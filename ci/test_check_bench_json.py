"""Unit tests for the bench-report gate scripts (check_bench_json.py and
compare_bench_json.py): crafted bad reports must each trip the right gate,
and the trajectory comparator must honor per-report tolerances only from
the committed baseline.

Run under pytest (CI: `python3 -m pytest ci -q`) or standalone
(`python3 ci/test_check_bench_json.py`) where pytest is unavailable.
"""

import copy
import importlib.util
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent


def _load(name):
    spec = importlib.util.spec_from_file_location(name, HERE / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check = _load("check_bench_json")
compare = _load("compare_bench_json")


# --- report builders ---------------------------------------------------------

def rail(bytes_sent=1000, polls=5, retransmits=0, stale=0, state=0):
    return {
        "bytes_sent": bytes_sent,
        "packets_sent": 1,
        "bytes_copied": 0,
        "pio_transfers": 0,
        "rdv_transfers": 1,
        "aggregation_hits": 0,
        "retransmits": retransmits,
        "stale_frames_dropped": stale,
        "state": state,
        "drv": {"polls": polls},
    }


def series(label, values=(100.0, 200.0), unit="MB/s", with_metrics=True):
    out = {"label": label, "unit": unit, "sizes": [1024, 2048],
           "values": list(values)}
    if with_metrics:
        out["metrics"] = {"a": {"gate0": {"rail0": rail()}},
                          "b": {"gate0": {"rail0": rail()}}}
    return out


def good_report(bench="pingpong"):
    return {
        "bench": bench,
        "smoke": True,
        "metrics_enabled": True,
        "meta": {"progress_mode": "serial", "chaos_profile": "none",
                 "seed": 0},
        "series": [series("sweep")],
        "checks": [{"what": "gate: delivered", "measured": 1.0,
                    "reference": 1.0, "ok": True}],
    }


def pattern_stamp(pattern="rail", p=4, g=2, k=2, direction="uni"):
    return {"pattern": pattern, "p": p, "g": g, "k": k,
            "direction": direction}


def good_patterns_report():
    report = good_report(bench="patterns")
    report["meta"]["pattern_points"] = [pattern_stamp()]
    report["series"] = [series("rail/uni/p4g2k2/striped"),
                        series("rail/uni/p4g2k2/only:sci")]
    return report


def run_check(tmp_path, report, name="BENCH_x.json"):
    path = tmp_path / name
    path.write_text(json.dumps(report), encoding="utf-8")
    return check.check_report(str(path))


def assert_only_error(errors, needle):
    assert errors, f"expected an error mentioning {needle!r}, got none"
    assert all(needle in e for e in errors), errors


# --- check_bench_json: clean-run invariants ----------------------------------

def test_good_report_passes(tmp_path):
    assert run_check(tmp_path, good_report()) == []


def test_retransmits_on_clean_run_fail(tmp_path):
    report = good_report()
    report["series"][0]["metrics"]["a"]["gate0"]["rail0"] = rail(retransmits=3)
    assert_only_error(run_check(tmp_path, report), "retransmits=3")


def test_dead_final_state_fails(tmp_path):
    report = good_report()
    report["series"][0]["metrics"]["b"]["gate0"]["rail0"] = rail(state=2)
    assert_only_error(run_check(tmp_path, report), "state=2")


def test_probing_allowed_mid_sweep_but_not_final(tmp_path):
    report = good_report()
    report["series"] = [series("mid"), series("final")]
    report["series"][0]["metrics"]["a"]["gate0"]["rail0"] = rail(state=3)
    assert run_check(tmp_path, report) == []
    report["series"][1]["metrics"]["a"]["gate0"]["rail0"] = rail(state=3)
    assert_only_error(run_check(tmp_path, report), "state=3")


def test_stale_frames_on_clean_run_fail(tmp_path):
    report = good_report()
    report["series"][0]["metrics"]["a"]["gate0"]["rail0"] = rail(stale=1)
    assert_only_error(run_check(tmp_path, report), "stale_frames_dropped=1")


def test_chaos_profile_relaxes_clean_run_invariants(tmp_path):
    # The same report that fails clean passes once it declares its faults.
    report = good_report()
    report["series"][0]["metrics"]["a"]["gate0"]["rail0"] = rail(
        retransmits=7, stale=2, state=2)
    assert run_check(tmp_path, report)
    report["meta"]["chaos_profile"] = "drop1_dup1_corrupt05"
    assert run_check(tmp_path, report) == []


def test_missing_meta_fails(tmp_path):
    report = good_report()
    del report["meta"]
    assert_only_error(run_check(tmp_path, report), "meta")


def test_missing_seed_fails(tmp_path):
    report = good_report()
    del report["meta"]["seed"]
    assert_only_error(run_check(tmp_path, report), "meta.seed")


def test_failed_gate_check_fails_even_in_smoke(tmp_path):
    report = good_report()
    report["checks"][0]["ok"] = False
    assert_only_error(run_check(tmp_path, report), "must-hold check failed")


def test_dead_rail_fails(tmp_path):
    report = good_report()
    for side in ("a", "b"):
        report["series"][0]["metrics"][side]["gate0"]["rail1"] = rail(
            bytes_sent=0, polls=0)
    assert_only_error(run_check(tmp_path, report), "dead rail")


# --- check_bench_json: pattern stamps ----------------------------------------

def test_patterns_report_with_stamps_passes(tmp_path):
    assert run_check(tmp_path, good_patterns_report()) == []


def test_patterns_report_without_stamps_fails(tmp_path):
    report = good_patterns_report()
    del report["meta"]["pattern_points"]
    assert_only_error(run_check(tmp_path, report), "pattern_points")


def test_non_pattern_reports_need_no_stamps(tmp_path):
    assert run_check(tmp_path, good_report(bench="fig7")) == []


def test_malformed_stamps_fail(tmp_path):
    bad_stamps = [
        (pattern_stamp(pattern="ring"), "pattern='ring'"),
        (pattern_stamp(direction="both"), "direction='both'"),
        (pattern_stamp(k=0), "k=0"),
        (pattern_stamp(p="4"), "p='4'"),
        (pattern_stamp(k=3), "invalid dimensions"),        # k > g
        (pattern_stamp(p=4, g=3), "invalid dimensions"),   # g does not divide p
        (pattern_stamp(p=4, g=4), "at least two groups"),
    ]
    for stamp, needle in bad_stamps:
        report = good_patterns_report()
        report["meta"]["pattern_points"] = [stamp]
        errors = run_check(tmp_path, report)
        assert any(needle in e for e in errors), (stamp, errors)


def test_stamp_without_series_fails(tmp_path):
    report = good_patterns_report()
    report["meta"]["pattern_points"].append(
        pattern_stamp(pattern="dense", direction="omni"))
    assert_only_error(run_check(tmp_path, report),
                      "'dense/omni/p4g2k2' has no series")


def test_series_without_stamp_fails(tmp_path):
    report = good_patterns_report()
    report["series"].append(series("fan/uni/p8g4k2/striped"))
    assert_only_error(run_check(tmp_path, report),
                      "matches no stamped pattern point")


def test_p2p_stamp_accepts_trivial_groups(tmp_path):
    report = good_patterns_report()
    report["meta"]["pattern_points"] = [
        pattern_stamp(pattern="p2p", p=8, g=1, k=1, direction="omni")]
    report["series"] = [series("p2p/omni/p8g1k1/striped")]
    assert run_check(tmp_path, report) == []


# --- compare_bench_json: baseline-owned tolerance ----------------------------

def write_pair(tmp_path, baseline, current, name="BENCH_t.json"):
    base_dir = tmp_path / "baselines"
    base_dir.mkdir(exist_ok=True)
    (base_dir / name).write_text(json.dumps(baseline), encoding="utf-8")
    cur = tmp_path / name
    cur.write_text(json.dumps(current), encoding="utf-8")
    return cur, base_dir


def test_compare_identical_reports_pass(tmp_path):
    report = good_report()
    cur, base_dir = write_pair(tmp_path, report, report)
    rows = []
    assert compare.compare_report(str(cur), str(base_dir), 0.08, rows) == []


def test_compare_regression_beyond_tolerance_fails(tmp_path):
    baseline = good_report()
    current = copy.deepcopy(baseline)
    current["series"][0]["values"] = [50.0, 200.0]  # -50% on a MB/s series
    cur, base_dir = write_pair(tmp_path, baseline, current)
    rows = []
    errors = compare.compare_report(str(cur), str(base_dir), 0.08, rows)
    assert_only_error(errors, "regressed")


def test_compare_honors_tolerance_from_baseline(tmp_path):
    baseline = good_report()
    baseline["compare"] = {"tolerance": 0.60}
    current = copy.deepcopy(baseline)
    current["series"][0]["values"] = [50.0, 200.0]  # -50%, inside 60%
    cur, base_dir = write_pair(tmp_path, baseline, current)
    rows = []
    assert compare.compare_report(str(cur), str(base_dir), 0.08, rows) == []


def test_compare_ignores_tolerance_from_current_report(tmp_path):
    # A regressing run must not be able to loosen its own gate: the
    # override counts only when the *committed baseline* carries it.
    baseline = good_report()
    current = copy.deepcopy(baseline)
    current["compare"] = {"tolerance": 0.60}
    current["series"][0]["values"] = [50.0, 200.0]
    cur, base_dir = write_pair(tmp_path, baseline, current)
    rows = []
    errors = compare.compare_report(str(cur), str(base_dir), 0.08, rows)
    assert_only_error(errors, "regressed")


def test_compare_meta_mismatch_skips(tmp_path):
    baseline = good_report()
    current = copy.deepcopy(baseline)
    current["meta"]["chaos_profile"] = "drop1_dup1_corrupt05"
    current["series"][0]["values"] = [1.0, 1.0]  # would fail if compared
    cur, base_dir = write_pair(tmp_path, baseline, current)
    rows = []
    assert compare.compare_report(str(cur), str(base_dir), 0.08, rows) == []
    assert rows and rows[-1][-1] == "SKIP"


def test_compare_missing_baseline_is_a_note(tmp_path):
    cur = tmp_path / "BENCH_new.json"
    cur.write_text(json.dumps(good_report()), encoding="utf-8")
    (tmp_path / "baselines").mkdir(exist_ok=True)
    rows = []
    assert compare.compare_report(str(cur), str(tmp_path / "baselines"),
                                  0.08, rows) == []
    assert rows and rows[-1][-1] == "NOTE"


def test_compare_dropped_series_fails(tmp_path):
    baseline = good_report()
    baseline["series"].append(series("second"))
    cur, base_dir = write_pair(tmp_path, baseline, good_report())
    rows = []
    errors = compare.compare_report(str(cur), str(base_dir), 0.08, rows)
    assert_only_error(errors, "missing from the current report")


# --- standalone fallback (pytest is optional in dev containers) --------------

def _main():
    import inspect
    import tempfile
    failures = 0
    tests = [(n, f) for n, f in sorted(globals().items())
             if n.startswith("test_") and inspect.isfunction(f)]
    for name, fn in tests:
        with tempfile.TemporaryDirectory() as tmp:
            try:
                fn(pathlib.Path(tmp))
                print(f"PASS {name}")
            except AssertionError as exc:
                failures += 1
                print(f"FAIL {name}: {exc}")
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(_main())
