#!/usr/bin/env python3
"""Diff bench JSON reports against committed baselines (bench trajectory).

Every CI run emits BENCH_<name>.json reports (uploaded as artifacts); this
script compares the gate-relevant value series of the current run against
the baselines committed in bench/baselines/, and fails on regressions
beyond tolerance. The simulator runs in virtual time with fixed seeds, so
a series is reproducible across machines up to libm last-ulp noise — the
tolerance absorbs that, and real regressions (a strategy suddenly striping
worse, an estimator mis-converging) show up as deltas far beyond it.

Rules:
  * reports are matched to baselines by filename; a report with no
    committed baseline is noted and passes (new benches land first, their
    baseline follows in the next commit);
  * a report whose meta block (progress_mode/chaos_profile/seed) or smoke
    flag differs from the baseline's is skipped with a note — trajectories
    are only meaningful between identical configurations;
  * series are matched by label; metrics-only series (no values) are not
    compared. A baseline series missing from the current report fails
    (a silently dropped measurement is itself a regression);
  * direction is inferred from the unit: MB/s-like units must not drop,
    us-like units must not rise, anything else is compared two-sided;
  * the worst per-point relative delta in the regressing direction is
    compared against the tolerance (default 8%, --tolerance to override);
  * a baseline carrying a top-level {"compare": {"tolerance": X}} block
    overrides the tolerance for that report only — real-time benches
    (mt_message_rate) stamp a loose value so their machine-dependent rate
    series only gate on collapses; their exact-count invariants live in
    the bench's own "gate:" checks, which check_bench_json.py enforces.

A per-series delta table is printed to stdout and, when the
GITHUB_STEP_SUMMARY environment variable is set, appended there as
markdown for the job summary page.

Usage: compare_bench_json.py [--baselines DIR] [--tolerance FRAC] \
           BENCH_foo.json [BENCH_bar.json ...]
"""

import argparse
import json
import os
import sys

HIGHER_IS_BETTER = ("mb/s", "gb/s", "packets/s", "msgs/s")
LOWER_IS_BETTER = ("us", "µs", "ns", "ms", "s")


def direction(unit):
    """-1: value must not drop, +1: must not rise, 0: two-sided."""
    u = unit.strip().lower()
    if u in HIGHER_IS_BETTER:
        return -1
    if u in LOWER_IS_BETTER:
        return +1
    return 0


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def value_series(report):
    """label -> (unit, values) for every compared (value-bearing) series."""
    out = {}
    for s in report.get("series", []):
        values = s.get("values", [])
        if values:
            out[s.get("label", "<unlabeled>")] = (s.get("unit", ""), values)
    return out


def worst_delta(unit, base, cur):
    """Worst per-point relative delta in the regressing direction.

    Returns (worst, mean_signed): `worst` >= 0 grows only when a point
    moved the wrong way; `mean_signed` is the average relative change for
    the table (positive = current above baseline).
    """
    sense = direction(unit)
    worst = 0.0
    signed = []
    for b, c in zip(base, cur):
        if b == 0.0:
            continue
        rel = (c - b) / abs(b)
        signed.append(rel)
        if sense < 0:
            worst = max(worst, -rel)  # drop in a higher-is-better series
        elif sense > 0:
            worst = max(worst, rel)  # rise in a lower-is-better series
        else:
            worst = max(worst, abs(rel))
    mean = sum(signed) / len(signed) if signed else 0.0
    return worst, mean


def compare_report(path, baseline_dir, tolerance, rows):
    name = os.path.basename(path)
    base_path = os.path.join(baseline_dir, name)
    try:
        current = load(path)
    except (OSError, ValueError) as exc:
        return [f"{name}: cannot load current report: {exc}"]
    if not os.path.exists(base_path):
        rows.append((name, "-", "no baseline committed", "", "NOTE"))
        return []
    try:
        baseline = load(base_path)
    except (OSError, ValueError) as exc:
        return [f"{name}: cannot load baseline: {exc}"]

    if baseline.get("meta") != current.get("meta") or \
            baseline.get("smoke") != current.get("smoke"):
        rows.append((name, "-",
                     f"config mismatch (baseline {baseline.get('meta')}, "
                     f"current {current.get('meta')})", "", "SKIP"))
        return []

    # Per-report override: the *baseline* (the committed, reviewed file)
    # owns the tolerance, so a regressing run cannot loosen its own gate.
    compare = baseline.get("compare")
    if isinstance(compare, dict):
        override = compare.get("tolerance")
        if isinstance(override, (int, float)) and not isinstance(override, bool) \
                and override >= 0:
            tolerance = float(override)

    errors = []
    base_series = value_series(baseline)
    cur_series = value_series(current)
    for label, (unit, base_values) in sorted(base_series.items()):
        if label not in cur_series:
            errors.append(f"{name}: series '{label}' present in baseline "
                          "but missing from the current report")
            rows.append((name, label, "missing from current run", "", "FAIL"))
            continue
        cur_unit, cur_values = cur_series[label]
        if len(cur_values) != len(base_values) or cur_unit != unit:
            errors.append(
                f"{name}: series '{label}' shape changed "
                f"({len(base_values)} x {unit} -> {len(cur_values)} x "
                f"{cur_unit}); refresh the baseline intentionally")
            rows.append((name, label, "shape changed", "", "FAIL"))
            continue
        worst, mean = worst_delta(unit, base_values, cur_values)
        status = "OK" if worst <= tolerance else "FAIL"
        rows.append((name, label, f"{mean:+.2%} mean", f"{worst:.2%}", status))
        if status == "FAIL":
            errors.append(
                f"{name}: series '{label}' regressed: worst per-point delta "
                f"{worst:.2%} exceeds tolerance {tolerance:.0%} "
                f"(unit {unit}, mean change {mean:+.2%})")
    for label in sorted(set(cur_series) - set(base_series)):
        rows.append((name, label, "new series (no baseline)", "", "NOTE"))
    return errors


def render_table(rows, markdown=False):
    header = ("report", "series", "delta", "worst", "status")
    if markdown:
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "---|" * len(header)]
        lines += ["| " + " | ".join(r) + " |" for r in rows]
        return "\n".join(lines) + "\n"
    widths = [max(len(str(r[i])) for r in rows + [header])
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(str(c).ljust(w) for c, w in zip(r, widths))
              for r in rows]
    return "\n".join(lines) + "\n"


def main(argv):
    parser = argparse.ArgumentParser(
        description="compare bench JSON reports against committed baselines")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline reports")
    parser.add_argument("--tolerance", type=float, default=0.08,
                        help="worst per-point relative delta allowed")
    parser.add_argument("reports", nargs="+")
    args = parser.parse_args(argv[1:])

    failures = []
    rows = []
    for path in args.reports:
        failures.extend(compare_report(path, args.baselines, args.tolerance,
                                       rows))

    if rows:
        print(render_table(rows), end="")
        summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary:
            with open(summary, "a", encoding="utf-8") as f:
                f.write("## Bench trajectory vs committed baselines\n\n")
                f.write(render_table(rows, markdown=True))
                f.write("\n")
    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
