#!/usr/bin/env python3
"""Gate on benchmark metrics reports (BENCH_<name>.json).

The bench-smoke CI job runs selected fig*/abl_* benchmarks with
NMAD_BENCH_SMOKE=1 and feeds the emitted JSON files through this checker,
which fails the build when:

  * the file is missing, unparsable, or was produced by a metrics-off
    build (metrics_enabled != true);
  * the top-level "meta" block is missing or malformed: every report must
    name the configuration that produced it — progress_mode (string),
    chaos_profile (string, "none" when the bench injects no faults) and
    seed (integer) — so trajectory comparisons never diff runs from
    different configurations;
  * a series' per-rail metrics object lacks any of the required counters;
  * a rail copied more payload bytes than it sent (bytes_copied is charged
    only for the aggregation staging memcpy, which is always a subset of
    the bytes that reach the wire);
  * a packet_path entry (micro_hotpaths) violates the zero-copy contract:
    bytes_copied must never exceed total_bytes, paths flagged zero_copy
    must report bytes_copied == 0, and packets_per_sec must be positive;
  * a must-hold check failed: check records whose "what" starts with
    "gate:" are acceptance gates (e.g. the striped collective broadcast
    beating the best single rail) and fail the build even in smoke mode,
    where ordinary checks are advisory and only recorded;
  * the reliability layer misbehaved on a clean (lossless) run: benches
    inject no faults, so any railN.retransmits > 0 means spurious timeouts
    (an RTO mistuned far below the simulated RTT), and any
    railN.stale_frames_dropped > 0 means an epoch fence fired with no
    reconnect ever having happened. railN.state may legitimately read 3
    (probing) in a mid-sweep snapshot — a keepalive probe can be in flight
    when the series is sampled — but suspect (1) and dead (2) are always
    errors on a clean run, and in the *final* series of a report every
    rail must have settled back to healthy (0). These clean-run
    invariants are relaxed when meta.chaos_profile is anything other than
    "none": a bench that declares injected faults legitimately
    retransmits, drops stale frames and cycles rail state, and only the
    structural checks (keys, copy bounds, liveness) and "gate:" checks
    still apply;
  * a pattern sweep (bench == "patterns") fails to declare its points:
    meta.pattern_points must be a non-empty list of {pattern, p, g, k,
    direction} stamps with pattern in {p2p, rail, fan, dense}, direction
    in {uni, bi, omni} and integers 1 <= k <= g <= p with g dividing p
    (group patterns need at least two groups). Stamps and series must
    agree both ways: every stamp's "pattern/direction/p<P>g<G>k<K>" label
    must prefix at least one emitted series and every value-bearing
    series must carry a stamped prefix — an unstamped series or a stamp
    with no data means the sweep and its declaration diverged;
  * a rail is dead: neither endpoint sent bytes on it and neither endpoint
    ever polled it. A rail that carries zero bytes is legitimate (the v2
    strategy aggregates small messages on the fastest rail, so in a latency
    sweep the slow rail only gets polled — the paper's Fig. 6 polling gap),
    but a rail no progression engine ever touches is unwired
    instrumentation or a broken platform. Liveness is judged per physical
    rail: the two sessions' views ("a.gate0.rail0" / "b.gate0.rail0") are
    summed, since one-way traffic leaves the sender's idle rail untouched
    while the receiver's side of it is polled on every arrival;
  * no rail in the whole report carried any bytes at all.

Usage: check_bench_json.py BENCH_foo.json [BENCH_bar.json ...]
"""

import json
import sys

REQUIRED_RAIL_KEYS = (
    "bytes_sent",
    "packets_sent",
    "bytes_copied",
    "pio_transfers",
    "rdv_transfers",
    "aggregation_hits",
    "retransmits",
    "stale_frames_dropped",
    "state",
)

REQUIRED_PACKET_PATH_KEYS = (
    "name",
    "zero_copy",
    "packets_per_sec",
    "bytes_copied",
    "total_bytes",
    "pool_hits",
    "pool_misses",
)

PATTERN_NAMES = ("p2p", "rail", "fan", "dense")
DIRECTION_NAMES = ("uni", "bi", "omni")


def check_pattern_points(path, report, errors):
    """Validate meta.pattern_points on pattern-sweep reports and cross-check
    the stamps against the emitted series labels (both directions)."""
    meta = report.get("meta")
    points = meta.get("pattern_points") if isinstance(meta, dict) else None
    if not isinstance(points, list) or not points:
        errors.append(f"{path}: bench 'patterns' must stamp a non-empty "
                      "meta.pattern_points list")
        return

    stamp_labels = []
    for i, pt in enumerate(points):
        where = f"{path}: meta.pattern_points[{i}]"
        if not isinstance(pt, dict):
            errors.append(f"{where}: not an object")
            continue
        pattern = pt.get("pattern")
        direction = pt.get("direction")
        bad = False
        if pattern not in PATTERN_NAMES:
            errors.append(f"{where}: pattern={pattern!r} not in "
                          f"{list(PATTERN_NAMES)}")
            bad = True
        if direction not in DIRECTION_NAMES:
            errors.append(f"{where}: direction={direction!r} not in "
                          f"{list(DIRECTION_NAMES)}")
            bad = True
        dims = {}
        for key in ("p", "g", "k"):
            value = pt.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                errors.append(f"{where}: {key}={value!r} must be a positive "
                              "integer")
                bad = True
            else:
                dims[key] = value
        if bad:
            continue
        p, g, k = dims["p"], dims["g"], dims["k"]
        if p < 2 or k > g or g > p or p % g != 0:
            errors.append(f"{where}: invalid dimensions p={p} g={g} k={k} "
                          "(need p >= 2, k <= g <= p, g | p)")
            continue
        if pattern != "p2p" and p // g < 2:
            errors.append(f"{where}: group pattern '{pattern}' needs at "
                          f"least two groups (p={p}, g={g})")
            continue
        stamp_labels.append(f"{pattern}/{direction}/p{p}g{g}k{k}")

    series_labels = [s.get("label", "") for s in report.get("series", [])
                     if s.get("values")]
    for stamp in stamp_labels:
        if not any(label.startswith(stamp + "/") or label == stamp
                   for label in series_labels):
            errors.append(f"{path}: stamped point '{stamp}' has no series "
                          "(the sweep and its declaration diverged)")
    for label in series_labels:
        if not any(label.startswith(stamp + "/") or label == stamp
                   for stamp in stamp_labels):
            errors.append(f"{path}: series '{label}' matches no stamped "
                          "pattern point")


def iter_rails(node, path=""):
    """Yield (path, rail_object) for every railN sub-object in a metrics tree."""
    if not isinstance(node, dict):
        return
    for key, value in node.items():
        if key.startswith("rail") and key[4:].isdigit() and isinstance(value, dict):
            yield f"{path}{key}", value
        else:
            yield from iter_rails(value, f"{path}{key}.")


def check_report(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as exc:
        return [f"{path}: cannot load: {exc}"]

    if report.get("metrics_enabled") is not True:
        errors.append(f"{path}: metrics_enabled is not true "
                      "(bench built with NMAD_METRICS=OFF?)")
        return errors

    meta = report.get("meta")
    if not isinstance(meta, dict):
        errors.append(f"{path}: missing top-level 'meta' block "
                      "(progress_mode/chaos_profile/seed)")
    else:
        for key in ("progress_mode", "chaos_profile"):
            value = meta.get(key)
            if not isinstance(value, str) or not value:
                errors.append(f"{path}: meta.{key}={value!r} must be a "
                              "non-empty string")
        seed = meta.get("seed")
        if not isinstance(seed, int) or isinstance(seed, bool):
            errors.append(f"{path}: meta.seed={seed!r} must be an integer")

    if report.get("bench") == "patterns":
        check_pattern_points(path, report, errors)

    # A declared fault/shaping profile legitimizes retransmits, stale-frame
    # drops and rail-state churn; only clean runs carry those invariants.
    clean_run = (not isinstance(meta, dict)
                 or meta.get("chaos_profile") == "none")

    total_rails = 0
    total_bytes = 0
    series_list = report.get("series", [])
    for index, series in enumerate(series_list):
        is_final = index == len(series_list) - 1
        label = series.get("label", "<unlabeled>")
        # physical rail id (path minus the session prefix) -> [bytes, polls]
        physical = {}
        for rail_path, rail in iter_rails(series.get("metrics", {})):
            total_rails += 1
            where = f"{path}: series '{label}': {rail_path}"
            missing = [k for k in REQUIRED_RAIL_KEYS if k not in rail]
            if missing:
                errors.append(f"{where}: missing keys {missing}")
                continue
            if rail["bytes_copied"] > rail["bytes_sent"]:
                errors.append(
                    f"{where}: bytes_copied={rail['bytes_copied']} exceeds "
                    f"bytes_sent={rail['bytes_sent']} (staging copies must be "
                    "a subset of wire traffic)")
            if clean_run and rail["retransmits"] != 0:
                errors.append(
                    f"{where}: retransmits={rail['retransmits']} on a clean "
                    "bench run (no faults are injected; the RTO fired "
                    "spuriously)")
            if clean_run and rail["stale_frames_dropped"] != 0:
                errors.append(
                    f"{where}: stale_frames_dropped="
                    f"{rail['stale_frames_dropped']} on a clean bench run "
                    "(the epoch fence fired, but no reconnect should ever "
                    "happen without injected faults)")
            state = rail["state"]
            state_value = state.get("value") if isinstance(state, dict) else state
            # A mid-sweep snapshot may catch a keepalive probe in flight
            # (state 3), but the final series must show every rail settled
            # back to healthy, and suspect/dead are never clean.
            allowed = (0,) if is_final else (0, 3)
            if clean_run and state_value not in allowed:
                errors.append(
                    f"{where}: state={state_value} "
                    + ("(final series: every rail must end a clean bench run "
                       "healthy (0); 1=suspect, 2=dead, 3=probing)"
                       if is_final else
                       "(clean bench runs allow only healthy (0) or a "
                       "transiting probe (3) mid-sweep; 1=suspect, 2=dead)"))
            rail_id = rail_path.split(".", 1)[-1]
            acc = physical.setdefault(rail_id, [0, 0])
            acc[0] += rail["bytes_sent"]
            acc[1] += rail.get("drv", {}).get("polls", 0)
            total_bytes += rail["bytes_sent"]
        for rail_id, (bytes_sent, polls) in sorted(physical.items()):
            if bytes_sent == 0 and polls == 0:
                errors.append(f"{path}: series '{label}': {rail_id}: dead rail "
                              "(bytes_sent=0 and drv.polls=0 on both endpoints)")

    for chk in report.get("checks", []):
        what = chk.get("what", "")
        if what.startswith("gate:") and chk.get("ok") is not True:
            errors.append(
                f"{path}: must-hold check failed: '{what}' "
                f"(measured={chk.get('measured')}, "
                f"reference={chk.get('reference')})")

    packet_paths = report.get("packet_path", [])
    for entry in packet_paths:
        name = entry.get("name", "<unnamed>")
        where = f"{path}: packet_path '{name}'"
        missing = [k for k in REQUIRED_PACKET_PATH_KEYS if k not in entry]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        if entry["bytes_copied"] > entry["total_bytes"]:
            errors.append(f"{where}: bytes_copied={entry['bytes_copied']} "
                          f"exceeds total_bytes={entry['total_bytes']}")
        if entry["zero_copy"] and entry["bytes_copied"] != 0:
            errors.append(f"{where}: flagged zero_copy but "
                          f"bytes_copied={entry['bytes_copied']}")
        if entry["packets_per_sec"] <= 0:
            errors.append(f"{where}: packets_per_sec="
                          f"{entry['packets_per_sec']} is not positive")

    # A report must demonstrate life through at least one modality: rail
    # traffic (fig*/abl_* sweeps) or packet-path measurements
    # (micro_hotpaths).
    if total_rails == 0 and not packet_paths:
        errors.append(f"{path}: no per-rail metrics and no packet_path "
                      "entries found")
    elif total_rails > 0 and total_bytes == 0:
        errors.append(f"{path}: every rail reports bytes_sent=0")

    if not errors:
        print(f"OK   {path}: {total_rails} rails checked, "
              f"{total_bytes} bytes accounted, "
              f"{len(packet_paths)} packet paths")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        failures.extend(check_report(path))
    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
