#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

For every ``[text](target)`` link in the given markdown files:

  * external targets (http://, https://, mailto:) are skipped;
  * pure-anchor targets (#section) are skipped;
  * everything else is resolved relative to the containing file's directory
    (after stripping any trailing #anchor) and must exist on disk.

Stdlib-only, so it runs anywhere CI does.

Usage: check_markdown_links.py FILE.md [FILE.md ...]
"""

import pathlib
import re
import sys

# [text](target) — target without closing parens; images ![alt](p) included.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:")


def check_file(path):
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link '{target}' "
                              f"(resolved to {resolved})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = []
    checked = 0
    for name in argv[1:]:
        path = pathlib.Path(name)
        if not path.is_file():
            failures.append(f"{name}: no such file")
            continue
        checked += 1
        failures.extend(check_file(path))
    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    if not failures:
        print(f"OK   {checked} files, all relative links resolve")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
