// Ablation A3 — stripping-ratio sweep. Forces the split ratio of the v3
// strategy across [0.1, 0.9] for the Myri-10G share of an 8 MB segment and
// compares against the sampling-derived adaptive ratio. The sampled ratio
// must sit at (or very near) the optimum of the forced sweep.

#include <cstdio>

#include "harness.hpp"
#include "sampling/sampler.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

double bandwidth_with_ratio(double myri_share, const char* label = nullptr) {
  core::TwoNodePlatform p(core::paper_platform("split_balance"));
  p.a().scheduler().gate(p.gate_ab()).set_ratios({myri_share, 1.0 - myri_share});
  p.b().scheduler().gate(p.gate_ba()).set_ratios({myri_share, 1.0 - myri_share});
  const double us = pingpong_oneway_us(p, 8 * 1024 * 1024, PingPongOpts{});
  if (label != nullptr) record_metrics(label, p);
  return 8.0 * 1024 * 1024 / us;
}

}  // namespace

int main() {
  set_report_name("abl_split_ratio");
  std::printf("=== Ablation A3: forced stripping ratio vs sampled ratio ===\n\n");

  std::printf("# %-12s %s\n", "myri_share", "bandwidth_MB/s");
  double best_bw = 0.0;
  double best_ratio = 0.0;
  for (double r = 0.1; r <= 0.901; r += 0.1) {
    const double bw = bandwidth_with_ratio(r);
    if (bw > best_bw) {
      best_bw = bw;
      best_ratio = r;
    }
    std::printf("%-14.2f %.2f\n", r, bw);
  }

  const core::PlatformConfig paper = core::paper_platform("split_balance");
  const std::vector<double> sampled = sampling::measure_rail_weights(
      paper.host_a, paper.host_b, paper.links);
  const double sampled_bw = bandwidth_with_ratio(sampled[0], "sampled-ratio");
  std::printf("\n# sampled myri share: %.3f -> %.2f MB/s (sweep best: %.2f at %.2f)\n\n",
              sampled[0], sampled_bw, best_bw, best_ratio);

  // The sampled ratio favors Myri-10G (the higher-bandwidth rail)...
  check_greater("A3 sampled myri share", sampled[0], 0.5);
  // ...and achieves at least 97% of the best forced ratio's bandwidth.
  check_greater("A3 sampled/best bandwidth (ratio)", sampled_bw / best_bw, 0.97);
  // The 50/50 point reproduces the iso-split deficit.
  check_greater("A3 best/iso bandwidth (ratio)", best_bw / bandwidth_with_ratio(0.5),
                1.05);
  return checks_exit_code();
}
