// Adaptive striping under time-varying network conditions: frozen
// boot-time split ratios versus online re-derivation from the live rail
// rate estimator (strat/rate_estimator.hpp), swept over the scenario
// family of sim/net_scenario.hpp.
//
// Each profile perturbs the Myri-10G a->b link while Quadrics stays
// nominal: the boot-time ratios (~58/42 Myri-heavy) become wrong, and a
// frozen split_balance keeps waiting on the degraded rail's stripes. The
// adaptive gate re-derives the ratios each optimization window from EWMA
// bandwidth estimates, so stripes shift toward the healthy rail within a
// few windows. The gates assert that adaptation wins on every shifting
// profile and costs nothing (no thrash) on the static one.
//
// Profile event times scale with the wave count, so smoke runs (24 waves)
// and full runs (96 waves) see the same perturbation *shape* relative to
// the run length. NMAD_ADAPT_SEED staggers the cross-traffic injection
// phase (the nightly CI job sweeps seeds 1..3); all runs are pinned serial
// and bit-reproducible per seed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "drv/sim_driver.hpp"
#include "harness.hpp"
#include "sim/net_scenario.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

constexpr std::uint64_t kMsgBytes = 1 << 20;  // 1 MB, well into the DMA range
constexpr int kMsgsPerWave = 4;

struct Profile {
  const char* name;
  /// Build the capacity phases for the shaped (Myri) link; `u` is the time
  /// unit (ns) the profile is stretched by, so smoke and full runs see the
  /// same shape. Empty phases + cross=false is the static baseline.
  std::vector<sim::CapacityPhase> (*phases)(sim::TimeNs u);
  bool cross_traffic = false;
};

const Profile kProfiles[] = {
    {"static", [](sim::TimeNs) { return sim::profile_static(); }, false},
    {"step",
     [](sim::TimeNs u) { return sim::profile_step(10 * u, 0.25); }, false},
    {"drift",
     [](sim::TimeNs u) {
       return sim::profile_drift(8 * u, 40 * u, 1.0, 0.3);
     },
     false},
    {"degrade_recover",
     [](sim::TimeNs u) {
       return sim::profile_degrade_recover(6 * u, 40 * u, 0.25);
     },
     false},
    {"cross_traffic", [](sim::TimeNs) { return sim::profile_static(); }, true},
};

/// Throughput (MB/s) of `waves` waves of kMsgsPerWave 1 MB messages a->b
/// on a fresh split_balance platform, with the profile playing on the
/// Myri a->b link. `adaptive` flips the online ratio re-derivation on.
double run_profile(const Profile& profile, bool adaptive, int waves,
                   std::uint64_t seed, bool record) {
  strat::StrategyConfig scfg;
  scfg.adaptive.enabled = adaptive;
  core::TwoNodePlatform p(
      core::pin_serial(core::paper_platform("split_balance", scfg)));

  // Perturbation times scale with the run so every wave count sees the
  // same profile shape; ~2.5 ms of full-speed traffic per 1 ms unit at
  // 24 waves.
  const sim::TimeNs unit = sim::us_to_ns(1000.0) * waves / 24;
  const sim::TimeNs t0 = p.now();
  const sim::ConstraintId myri_ab = p.rails_a()[0]->tx_link();
  const double nominal = p.world().net().capacity(myri_ab);

  sim::NetScenario scenario(p.world().engine(), p.world().net());
  auto phases = profile.phases(unit);
  for (sim::CapacityPhase& phase : phases) phase.at += t0;
  scenario.shape_link(myri_ab, nominal, phases);
  if (profile.cross_traffic) {
    // ~900 MB/s of offered background load on the Myri link: max-min fair
    // sharing leaves the foreground ~300 MB/s, like the deep step.
    scenario.add_cross_traffic(myri_ab, 900.0, 256 * 1024, t0 + 8 * unit,
                               t0 + 48 * unit, seed);
  }

  std::vector<std::byte> payload(kMsgBytes, std::byte{0x5a});
  std::vector<std::vector<std::byte>> sinks(
      kMsgsPerWave, std::vector<std::byte>(kMsgBytes));

  std::uint64_t total_bytes = 0;
  for (int wave = 0; wave < waves; ++wave) {
    std::vector<core::RecvHandle> recvs;
    std::vector<core::SendHandle> sends;
    for (int i = 0; i < kMsgsPerWave; ++i) {
      recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
    }
    for (int i = 0; i < kMsgsPerWave; ++i) {
      sends.push_back(p.a().isend(p.gate_ab(), 0, payload));
      total_bytes += kMsgBytes;
    }
    p.b().wait_all(sends, recvs);
  }

  const sim::TimeNs elapsed = p.now() - t0;
  // bytes/ns * 1000 == MB/s (1 MB = 1e6 B).
  const double mbps =
      static_cast<double>(total_bytes) * 1000.0 / static_cast<double>(elapsed);
  if (record) {
    record_metrics(std::string(profile.name) + "/" +
                       (adaptive ? "adaptive" : "frozen"),
                   p);
  }
  return mbps;
}

/// Flapping-link recovery: after a calibration window, the Myri a->b link
/// flaps between nominal and a deep trough four times, then recovers for
/// good. The fluid model cannot represent zero capacity (an outage proper
/// is the reliability layer's job, tests/test_chaos.cpp), so a flap here
/// is a 10x capacity collapse — enough to invert the boot-time ratios
/// during every down window. The gate: once the link has recovered and the
/// estimator re-converged, striped bandwidth must be back within 10% of
/// the pre-flap baseline — a recovered rail rejoins the stripe set at full
/// weight, with no residual down-weighting left over from the flaps.
void run_flap_recovery(int waves, std::uint64_t seed) {
  strat::StrategyConfig scfg;
  scfg.adaptive.enabled = true;
  core::TwoNodePlatform p(
      core::pin_serial(core::paper_platform("split_balance", scfg)));
  const sim::TimeNs unit = sim::us_to_ns(1000.0) * waves / 24;
  const sim::ConstraintId myri_ab = p.rails_a()[0]->tx_link();
  const double nominal = p.world().net().capacity(myri_ab);

  std::vector<std::byte> payload(kMsgBytes, std::byte{0x5a});
  std::vector<std::vector<std::byte>> sinks(
      kMsgsPerWave, std::vector<std::byte>(kMsgBytes));
  const auto run_waves = [&](int n) {
    const sim::TimeNs begin = p.now();
    std::uint64_t bytes = 0;
    for (int wave = 0; wave < n; ++wave) {
      std::vector<core::RecvHandle> recvs;
      std::vector<core::SendHandle> sends;
      for (int i = 0; i < kMsgsPerWave; ++i) {
        recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
      }
      for (int i = 0; i < kMsgsPerWave; ++i) {
        sends.push_back(p.a().isend(p.gate_ab(), 0, payload));
        bytes += kMsgBytes;
      }
      p.b().wait_all(sends, recvs);
    }
    return static_cast<double>(bytes) * 1000.0 /
           static_cast<double>(p.now() - begin);
  };

  // Pre-flap baseline on the unperturbed platform.
  const int measure_waves = waves / 3;
  const double pre = run_waves(measure_waves);

  // Four down/up flap cycles anchored at "now", then permanent recovery.
  const sim::TimeNs t1 = p.now();
  std::vector<sim::CapacityPhase> phases;
  for (int cycle = 0; cycle < 4; ++cycle) {
    phases.push_back({t1 + (2 * cycle + 0) * 3 * unit, 0.1});
    phases.push_back({t1 + (2 * cycle + 1) * 3 * unit, 1.0});
  }
  const sim::TimeNs flap_end = t1 + 8 * 3 * unit;
  sim::NetScenario scenario(p.world().engine(), p.world().net());
  scenario.shape_link(myri_ab, nominal, phases);
  (void)seed;  // the flap schedule is deterministic; seed only stamps meta

  // Keep traffic flowing through every flap window so the estimator sees
  // each collapse and each recovery.
  while (p.now() < flap_end) run_waves(1);

  // Two waves of settling (EWMA re-convergence), then the gated window.
  run_waves(2);
  const double post = run_waves(measure_waves);

  std::printf("%-20s  %12.1f  %12.1f  %8.3f   (pre-flap vs post-recovery)\n",
              "flap_recovery", pre, post, post / pre);
  Series flap{"flap_recovery", {pre, post}, {}};
  record_series("MB/s", {0, 1}, flap);
  record_metrics("flap_recovery/adaptive", p);
  check("gate: flap post-recovery vs pre-flap striped bandwidth", post, pre,
        0.10);
}

}  // namespace

int main() {
  set_report_name("adaptive_striping");
  const char* seed_env = std::getenv("NMAD_ADAPT_SEED");
  const std::uint64_t seed =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 1;
  set_report_seed(static_cast<long>(seed));

  const int waves = smoke_mode() ? 24 : 96;
  std::printf(
      "=== Adaptive striping: frozen vs online ratios (%d waves, seed %llu) "
      "===\n\n",
      waves, static_cast<unsigned long long>(seed));

  const std::size_t nprof = std::size(kProfiles);
  Series frozen{"frozen", {}, {}};
  Series adaptive{"adaptive", {}, {}};
  std::vector<std::uint64_t> ordinals;

  std::printf("# %-18s  %12s  %12s  %8s   [MB/s]\n", "profile", "frozen",
              "adaptive", "ratio");
  for (std::size_t i = 0; i < nprof; ++i) {
    const Profile& profile = kProfiles[i];
    const double f = run_profile(profile, false, waves, seed, /*record=*/false);
    const double a = run_profile(profile, true, waves, seed, /*record=*/true);
    frozen.values.push_back(f);
    adaptive.values.push_back(a);
    ordinals.push_back(i);
    std::printf("%-20s  %12.1f  %12.1f  %8.3f\n", profile.name, f, a, a / f);
  }
  std::printf("\n");

  run_flap_recovery(waves, seed);
  std::printf("\n");

  record_series("MB/s", ordinals, frozen);
  record_series("MB/s", ordinals, adaptive);

  // The tentpole's claim: online adaptation beats frozen boot-time ratios
  // on every shifting profile...
  for (std::size_t i = 0; i < nprof; ++i) {
    if (std::strcmp(kProfiles[i].name, "static") == 0) continue;
    check_greater(std::string("gate: adaptive/frozen throughput [") +
                      kProfiles[i].name + "]",
                  adaptive.values[i] / frozen.values[i], 1.02);
  }
  // ...and costs nothing when the network never changes (hysteresis keeps
  // the ratios parked at the boot-time prior).
  check("gate: adaptive matches frozen [static]", adaptive.values[0],
        frozen.values[0], 0.10);

  return checks_exit_code();
}
