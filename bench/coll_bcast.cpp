// Collective bandwidth: 4-rank binomial-tree broadcast over a multi-rail
// mesh vs the same broadcast restricted to each single rail.
//
// Every tree edge is an ordinary point-to-point message, so the installed
// strategy stripes each segment across the rails exactly as it does for
// the paper's ping-pong — the aggregate-bandwidth win of §3 carries over
// to collectives with no special-cased path. The striping gain shows on
// rails whose *sum* stays below the host I/O bus: SCI + GM-2 (~585 MB/s
// aggregate vs a ~1950 MB/s bus). The paper's Myri-10G + Quadrics pair is
// also swept, but in a fan-out-2 tree the root pushes two copies of the
// payload through its bus, so both the striped and the Myri-only broadcast
// saturate at bus/2 — rail aggregation cannot help there, and the bench
// checks that parity instead (the bus ceiling the paper's §3.1 testbed
// description warns about).
//
// The must-hold "gate:" check (striped bcast beats the best single rail)
// fails CI via ci/check_bench_json.py even in smoke mode, where ordinary
// checks are advisory.
#include <cstdio>
#include <cstring>
#include <vector>

#include "coll/communicator.hpp"
#include "harness.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;

constexpr std::size_t kRanks = 4;
constexpr std::size_t kRoot = 0;

/// Broadcast `size` bytes from rank 0 and return the achieved bandwidth in
/// MB/s of virtual time (1 MB = 1e6 B, the paper's axis convention).
/// Exits non-zero on data corruption, like the examples.
double bcast_bw(core::MultiNodePlatform& platform,
                std::vector<coll::Communicator>& comms,
                std::vector<std::vector<std::byte>>& bufs, std::uint64_t size) {
  util::Xoshiro256 rng(size);
  for (auto& b : bufs[kRoot]) b = std::byte(rng.next() & 0xff);
  for (std::size_t r = 0; r < kRanks; ++r) {
    if (r != kRoot) std::memset(bufs[r].data(), 0, size);
  }

  const sim::TimeNs t0 = platform.now();
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < kRanks; ++r) {
    ops.push_back(
        comms[r].ibcast(std::span<std::byte>(bufs[r].data(), size), kRoot));
  }
  if (!coll::wait_all(ops, coll::hooks_for(platform))) {
    std::fprintf(stderr, "broadcast failed at size %llu\n",
                 static_cast<unsigned long long>(size));
    std::exit(1);
  }
  const double us = sim::ns_to_us(platform.now() - t0);

  for (std::size_t r = 0; r < kRanks; ++r) {
    if (std::memcmp(bufs[r].data(), bufs[kRoot].data(), size) != 0) {
      std::fprintf(stderr, "rank %zu corrupted at size %llu\n", r,
                   static_cast<unsigned long long>(size));
      std::exit(1);
    }
  }
  return static_cast<double>(size) / us;  // B/µs == MB/s
}

/// Sweep the broadcast over `sizes` on a fresh mesh with the given rails.
bench::Series sweep_bcast(std::vector<netmodel::NicProfile> links,
                          std::string label,
                          const std::vector<std::uint64_t>& sizes) {
  core::MultiNodeConfig cfg;
  cfg.nodes = kRanks;
  cfg.links = std::move(links);
  cfg.strategy = cfg.links.size() > 1 ? "aggreg_greedy" : "single_rail";
  cfg.progress_mode = core::ProgressMode::kSerial;  // virtual-time timing
  core::MultiNodePlatform platform(cfg);

  std::vector<coll::Communicator> comms;
  comms.reserve(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    comms.push_back(coll::make_communicator(platform, r));
  }
  std::vector<std::vector<std::byte>> bufs(
      kRanks, std::vector<std::byte>(sizes.back()));

  bench::Series series;
  series.label = std::move(label);
  for (std::uint64_t size : sizes) {
    // Deterministic simulation: one warm-up pass reaches steady state.
    (void)bcast_bw(platform, comms, bufs, size);
    series.values.push_back(bcast_bw(platform, comms, bufs, size));
  }
  obs::MetricsRegistry registry;
  platform.register_metrics(registry);
  series.metrics = registry.snapshot();
  return series;
}

}  // namespace

int main() {
  bench::set_report_name("coll_bcast");
  const std::vector<std::uint64_t> sizes =
      bench::doubling_sizes(256 * 1024, 8 * 1024 * 1024);

  // Wire-bound pair: the aggregate (~585 MB/s) fits under the host bus
  // even at the root's fan-out of 2, so striping must show.
  const bench::Series striped = sweep_bcast(
      {netmodel::dolphin_sci(), netmodel::myrinet2000_gm2()}, "sci+gm2", sizes);
  const bench::Series sci = sweep_bcast({netmodel::dolphin_sci()}, "sci", sizes);
  const bench::Series gm2 =
      sweep_bcast({netmodel::myrinet2000_gm2()}, "gm2", sizes);

  // Bus-bound pair: the paper's testbed rails, each alone able to fill
  // half the bus — the fan-out-2 root is the bottleneck, not the wire.
  const bench::Series paper_pair =
      sweep_bcast({netmodel::myri10g(), netmodel::quadrics_qm500()},
                  "myri+quadrics", sizes);
  const bench::Series myri = sweep_bcast({netmodel::myri10g()}, "myri", sizes);

  bench::print_table("4-rank binomial broadcast bandwidth (root 0)", "MB/s",
                     sizes, {striped, sci, gm2, paper_pair, myri});

  // The striped broadcast must beat the best single rail at the largest
  // size — the paper's bandwidth-aggregation claim lifted to collectives.
  const double best_single = std::max(sci.values.back(), gm2.values.back());
  bench::check_greater("gate: striped bcast beats best single rail (8 MB)",
                       striped.values.back(), best_single);
  // And capture a solid fraction of the aggregate, not a sliver: the ideal
  // ratio over SCI alone is (340+245)/340 = 1.72.
  bench::check_greater("striped bcast margin over best single rail",
                       striped.values.back(), best_single * 1.3);
  // Bus-bound sanity: with the root's bus saturated, adding Quadrics next
  // to Myri-10G must neither help nor hurt materially.
  bench::check("bcast myri+quadrics parity with myri (bus-bound)",
               paper_pair.values.back(), myri.values.back(), 0.10);

  return bench::checks_exit_code();
}
