// Ablation A2 — polling-cost sensitivity. The Figure 6 gap between the
// multi-rail strategy and the Quadrics-only reference is attributed to
// polling the idle Myri-10G NIC; sweeping that NIC's poll cost must move
// the gap linearly and nothing else.

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

double small_latency(const core::PlatformConfig& cfg, const char* label) {
  core::TwoNodePlatform p(cfg);
  const double us = pingpong_oneway_us(p, 4, PingPongOpts{.segments = 2});
  record_metrics(label, p);
  return us;
}

}  // namespace

int main() {
  set_report_name("abl_poll_cost");
  std::printf("=== Ablation A2: polling cost vs Fig.6 gap ===\n\n");

  core::PlatformConfig quad_only;
  quad_only.links = {netmodel::quadrics_qm500()};
  quad_only.strategy = "aggreg";
  const double reference = small_latency(quad_only, "quadrics-only");
  std::printf("# quadrics-only reference latency: %.3f us\n", reference);
  std::printf("# %-18s %-12s %s\n", "myri_poll_cost_us", "latency_us", "gap_us");

  std::vector<double> gaps;
  for (double poll : {0.0, 0.2, 0.4, 0.8, 1.6}) {
    core::PlatformConfig cfg = core::paper_platform("aggreg_greedy");
    cfg.links[0].poll_cost_us = poll;  // Myri-10G rail
    char label[32];
    std::snprintf(label, sizeof(label), "poll=%.1fus", poll);
    const double latency = small_latency(cfg, label);
    gaps.push_back(latency - reference);
    std::printf("%-20.2f %-12.3f %.3f\n", poll, latency, gaps.back());
  }
  std::printf("\n");

  // Zero poll cost => (nearly) zero gap; gap grows with the poll cost.
  check_less("A2 gap at poll=0 (us)", gaps.front(), 0.15);
  check_greater("A2 gap at poll=1.6 vs poll=0.2 (ratio)", gaps.back() / gaps[1],
                3.0);
  bool monotone = true;
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    monotone = monotone && gaps[i] >= gaps[i - 1] - 1e-9;
  }
  check_greater("A2 gap monotone in poll cost (1=yes)", monotone ? 1.0 : 0.0, 0.5);
  return checks_exit_code();
}
