// Figure 7 — Packet stripping with adaptive threshold (strategy v3),
// bandwidth of a single large segment: one segment over Myri-10G only,
// over Quadrics only, iso-split (50/50) over both rails, and hetero-split
// using the ratios obtained from boot-time sampling.
//
// Expected shape (paper §3.4): hetero-split > iso-split > Myri-10G only >
// Quadrics only for large messages; the adaptive ratios send "the major
// part of the initial segment through Myri-10G".

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig one_rail(netmodel::NicProfile nic) {
  core::PlatformConfig cfg;
  cfg.links = {std::move(nic)};
  cfg.strategy = "single_rail";
  return cfg;
}

}  // namespace

int main() {
  set_report_name("fig7_stripping");
  std::printf("=== Figure 7: adaptive packet stripping (v3) ===\n\n");

  const auto bw_sizes = bandwidth_sizes();
  const PingPongOpts one_seg{.segments = 1};

  std::vector<Series> bw;
  bw.push_back(sweep_bandwidth(one_rail(netmodel::myri10g()), "1seg@myri",
                               bw_sizes, one_seg));
  bw.push_back(sweep_bandwidth(one_rail(netmodel::quadrics_qm500()),
                               "1seg@quadrics", bw_sizes, one_seg));
  bw.push_back(sweep_bandwidth(core::paper_platform("iso_split"), "iso-split",
                               bw_sizes, one_seg));

  core::PlatformConfig hetero = core::paper_platform("split_balance");
  hetero.sampled_ratios = true;  // the paper's initialization-time sampling
  bw.push_back(sweep_bandwidth(hetero, "hetero-split", bw_sizes, one_seg));

  print_table("Fig 7: single-segment stripping bandwidth", "MB/s", bw_sizes, bw);

  const double myri = bw[0].values.back();
  const double quad = bw[1].values.back();
  const double iso = bw[2].values.back();
  const double het = bw[3].values.back();

  // Ordering of the four curves at 8 MB.
  check_greater("Fig7 iso-split beats best single rail at 8MB (ratio)",
                iso / std::max(myri, quad), 1.2);
  check_greater("Fig7 hetero-split beats iso-split at 8MB (ratio)", het / iso,
                1.05);
  // Iso-split is gated by twice the slower (Quadrics) rail.
  check("Fig7 iso-split 8MB bandwidth ~= 2x quadrics (MB/s)", iso, 2.0 * quad,
        0.10);
  // Hetero-split approaches the I/O bus ceiling (~1.9-2 GB/s).
  check_greater("Fig7 hetero-split 8MB bandwidth (MB/s)", het, 1800.0);
  return checks_exit_code();
}
