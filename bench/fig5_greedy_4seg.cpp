// Figure 5 — Performance of the greedy balancing strategy with 4-segment
// messages. "As expected, the results exhibit the same overall behavior
// [as Figure 4]. Note that in the case of large data transfers, the
// bandwidth achieved is still interestingly rather high in spite of the
// additional processing due to the handling of a larger number of
// elementary transfers." (paper §3.2)

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig one_rail(netmodel::NicProfile nic) {
  core::PlatformConfig cfg;
  cfg.links = {std::move(nic)};
  cfg.strategy = "aggreg";
  return cfg;
}

}  // namespace

int main() {
  set_report_name("fig5_greedy_4seg");
  std::printf("=== Figure 5: greedy balancing, 4-segment messages ===\n\n");

  const auto lat_sizes = doubling_sizes(16, 32 * 1024);
  const auto bw_sizes = bandwidth_sizes();
  const PingPongOpts four_seg{.segments = 4};

  std::vector<Series> lat;
  lat.push_back(sweep_latency(one_rail(netmodel::myri10g()), "4agg@myri",
                              lat_sizes, four_seg));
  lat.push_back(sweep_latency(one_rail(netmodel::quadrics_qm500()),
                              "4agg@quadrics", lat_sizes, four_seg));
  lat.push_back(sweep_latency(core::paper_platform("greedy"), "4seg balanced",
                              lat_sizes, four_seg));

  std::vector<Series> bw;
  bw.push_back(sweep_bandwidth(one_rail(netmodel::myri10g()), "4agg@myri",
                               bw_sizes, four_seg));
  bw.push_back(sweep_bandwidth(one_rail(netmodel::quadrics_qm500()),
                               "4agg@quadrics", bw_sizes, four_seg));
  bw.push_back(sweep_bandwidth(core::paper_platform("greedy"), "4seg balanced",
                               bw_sizes, four_seg));

  print_table("Fig 5(a): 4-segment latency", "us", lat_sizes, lat);
  print_table("Fig 5(b): 4-segment bandwidth", "MB/s", bw_sizes, bw);

  // Same shape as Figure 4: high aggregate bandwidth despite 4 transfers.
  check("Fig5 balanced 8MB bandwidth (MB/s)", bw[2].values.back(), 1675.0, 0.10);
  check_greater("Fig5 balanced/best-single bandwidth at 8MB (ratio)",
                bw[2].values.back() / std::max(bw[0].values.back(), bw[1].values.back()),
                1.25);
  check_greater("Fig5 balanced 256B latency vs quadrics-agg (ratio)",
                lat[2].values[4] / lat[1].values[4], 1.0);
  return checks_exit_code();
}
