// Figure 6 — Strategy v2: aggregated eager messages on the fastest NIC
// (Quadrics) and greedily balanced large messages. Latency comparison
// against the two single-rail references.
//
// Expected shape (paper §3.3): the multi-rail curve tracks the Quadrics
// curve for small messages (aggregation + fastest-rail selection), with a
// small constant gap — "mainly due to a polling operation on the Myri-10G
// NIC. This penalty is mandatory if one wants to effectively use the
// multi-rail feature."

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig one_rail(netmodel::NicProfile nic) {
  core::PlatformConfig cfg;
  cfg.links = {std::move(nic)};
  cfg.strategy = "aggreg";
  return cfg;
}

}  // namespace

int main() {
  set_report_name("fig6_aggreg_fastest");
  std::printf("=== Figure 6: v2 strategy (aggregate small on fastest rail) ===\n\n");

  const auto lat_sizes = doubling_sizes(4, 16 * 1024);
  const PingPongOpts two_seg{.segments = 2};

  std::vector<Series> lat;
  lat.push_back(sweep_latency(one_rail(netmodel::myri10g()), "2agg@myri",
                              lat_sizes, two_seg));
  lat.push_back(sweep_latency(one_rail(netmodel::quadrics_qm500()),
                              "2agg@quadrics", lat_sizes, two_seg));
  lat.push_back(sweep_latency(core::paper_platform("aggreg_greedy"),
                              "2seg balanced(v2)", lat_sizes, two_seg));

  print_table("Fig 6: 2-segment latency, v2 strategy", "us", lat_sizes, lat);

  // v2 follows Quadrics (the fast rail), not Myri-10G.
  check_less("Fig6 v2 4B latency vs myri-agg (ratio)",
             lat[2].values.front() / lat[0].values.front(), 1.0);
  // The residual gap to the Quadrics-only reference is the Myri poll cost:
  // small, positive, and roughly constant.
  const double gap_small = lat[2].values[0] - lat[1].values[0];
  const double gap_mid = lat[2].values[5] - lat[1].values[5];
  check_greater("Fig6 polling gap at 4B (us)", gap_small, 0.05);
  check_less("Fig6 polling gap at 4B (us)", gap_small, 2.5);
  check("Fig6 polling gap roughly constant (128B vs 4B, us)", gap_mid, gap_small,
        0.5);
  return checks_exit_code();
}
