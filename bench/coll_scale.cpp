// Collective scalability: latency and sessions-established vs. world size
// N ∈ {8, 32, 128, 512}, hierarchical vs. flat trees over lazy sparse
// sessions.
//
// The world is heterogeneous the way the source paper's testbed is: ranks
// are grouped onto hosts of 6 (pattern_gen's group vocabulary — a
// deliberately non-power-of-two size so host blocks never align with
// binomial subtrees), co-hosted ranks talk over a fast Myri-10G rail and
// cross-host edges ride a slow GigE rail. The platform is lazy
// (MultiNodeConfig::lazy): sessions and edges are established on first
// use, so each N-rank world costs O(edges the trees actually touch) — a
// spanning tree's worth, not the full mesh's O(N^2). The "gate:" checks
// (ci/check_bench_json.py fails them even in smoke mode) hold the two
// tentpole claims: lazy establishment stays far below N^2/8 edges at
// N=512, and the hierarchy-composed trees (coll/topology.hpp) beat the
// flat binomial ones on broadcast and allreduce at every N >= 32.
//
// Progress mode follows NMAD_PROGRESS_MODE (the nightly job runs the full
// N=512 sweep in both modes). The default serial runs are virtual-time
// deterministic, so the committed smoke baseline
// (bench/baselines/BENCH_coll_scale.json) matches exactly across machines;
// smoke mode caps the sweep at N=128 to keep the push-time job quick.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "coll/communicator.hpp"
#include "harness.hpp"
#include "pattern_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;

/// Host size: deliberately not a power of two (see file comment).
constexpr std::size_t kHostSize = 6;
/// Broadcast root off rank 0, so even the root's host block is unaligned.
constexpr std::size_t kBcastRoot = 1;
constexpr std::size_t kPayloadBytes = 64 * 1024;

std::vector<std::uint64_t> world_sizes() {
  if (bench::smoke_mode()) return {8, 32, 128};
  return {8, 32, 128, 512};
}

core::MultiNodeConfig world_config(std::size_t n) {
  core::MultiNodeConfig cfg;
  cfg.nodes = n;
  cfg.links = {netmodel::gige_tcp()};             // slow cross-host rail
  cfg.intra_host_links = {netmodel::myri10g()};   // fast same-host rail
  cfg.strategy = "single_rail";
  cfg.hosts = bench::group_labels(n, kHostSize);
  cfg.lazy = true;
  // kDefault follows NMAD_PROGRESS_MODE: serial (the deterministic
  // baseline mode) unless the nightly matrix asks for threaded.
  cfg.progress_mode = core::ProgressMode::kDefault;
  return cfg;
}

struct WorldPoint {
  double bcast_us = 0.0;
  double allreduce_us = 0.0;
  std::size_t sessions_established = 0;
  obs::Snapshot metrics;
};

void fail(const char* what, std::size_t n) {
  std::fprintf(stderr, "%s failed at N=%zu\n", what, n);
  std::exit(1);
}

/// One N-rank world: warm (established lazily, untimed), then one timed
/// broadcast and one timed allreduce, contents verified byte-exact.
WorldPoint run_world(std::size_t n, bool hierarchical, bool capture_metrics) {
  core::MultiNodePlatform platform(world_config(n));
  // Threaded worlds run one progress thread per session; at N=512 that
  // oversubscribes small-core hosts badly enough that the 5 s default
  // stall watchdog can fire while work is still (slowly) advancing.
  coll::DriveHooks hooks = coll::hooks_for(platform);
  if (hooks.threaded) hooks.stall_ms = 120000;
  coll::CollConfig ccfg;
  ccfg.hierarchical = hierarchical;
  std::vector<coll::Communicator> comms;
  comms.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    comms.push_back(coll::make_communicator(platform, r, ccfg));
  }

  constexpr std::size_t kElems = kPayloadBytes / sizeof(std::uint64_t);
  std::vector<std::vector<std::uint64_t>> bufs(
      n, std::vector<std::uint64_t>(kElems));
  std::vector<std::vector<std::uint64_t>> results(
      n, std::vector<std::uint64_t>(kElems));

  auto bcast_once = [&] {
    util::Xoshiro256 rng(n);
    for (auto& v : bufs[kBcastRoot]) v = rng.next();
    for (std::size_t r = 0; r < n; ++r) {
      if (r != kBcastRoot) {
        std::memset(bufs[r].data(), 0, kPayloadBytes);
      }
    }
    std::vector<coll::CollHandle> ops;
    ops.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      ops.push_back(comms[r].ibcast(std::as_writable_bytes(std::span(bufs[r])),
                                    kBcastRoot));
    }
    if (!coll::wait_all(ops, hooks)) fail("broadcast", n);
    for (std::size_t r = 0; r < n; ++r) {
      if (std::memcmp(bufs[r].data(), bufs[kBcastRoot].data(),
                      kPayloadBytes) != 0) {
        fail("broadcast content", n);
      }
    }
  };
  auto allreduce_once = [&] {
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < kElems; ++i) {
        bufs[r][i] = r * 0x9e3779b97f4a7c15ull + i;
      }
      std::memset(results[r].data(), 0, kPayloadBytes);
    }
    std::vector<coll::CollHandle> ops;
    ops.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      ops.push_back(comms[r].iallreduce(std::span<const std::uint64_t>(bufs[r]),
                                        std::span<std::uint64_t>(results[r]),
                                        coll::ReduceKind::kSum));
    }
    if (!coll::wait_all(ops, hooks)) fail("allreduce", n);
    for (std::size_t i = 0; i < kElems; ++i) {
      std::uint64_t expect = 0;
      for (std::size_t r = 0; r < n; ++r) expect += bufs[r][i];
      for (std::size_t r = 0; r < n; ++r) {
        if (results[r][i] != expect) fail("allreduce content", n);
      }
    }
  };

  // Warm-up pass: establishes every lazy edge the trees touch (untimed)
  // and reaches the deterministic steady state.
  bcast_once();
  allreduce_once();

  WorldPoint point;
  sim::TimeNs t0 = platform.now();
  bcast_once();
  point.bcast_us = sim::ns_to_us(platform.now() - t0);
  t0 = platform.now();
  allreduce_once();
  point.allreduce_us = sim::ns_to_us(platform.now() - t0);
  point.sessions_established = platform.established_edges();
  if (capture_metrics) {
    obs::MetricsRegistry registry;
    platform.register_metrics(registry);
    point.metrics = registry.snapshot();
  }
  return point;
}

}  // namespace

int main() {
  bench::set_report_name("coll_scale");
  const std::vector<std::uint64_t> kWorldSizes = world_sizes();

  bench::Series hier_bcast, flat_bcast, hier_allred, flat_allred;
  bench::Series hier_sessions, flat_sessions;
  hier_bcast.label = "hier/bcast";
  flat_bcast.label = "flat/bcast";
  hier_allred.label = "hier/allreduce";
  flat_allred.label = "flat/allreduce";
  hier_sessions.label = "hier/sessions";
  flat_sessions.label = "flat/sessions";

  for (std::uint64_t n : kWorldSizes) {
    // Metrics ride the smallest world: the snapshot stays readable and the
    // report still proves rail liveness and clean-run health.
    const bool capture = n == kWorldSizes.front();
    const WorldPoint hier = run_world(n, /*hierarchical=*/true, capture);
    const WorldPoint flat = run_world(n, /*hierarchical=*/false, false);
    hier_bcast.values.push_back(hier.bcast_us);
    flat_bcast.values.push_back(flat.bcast_us);
    hier_allred.values.push_back(hier.allreduce_us);
    flat_allred.values.push_back(flat.allreduce_us);
    hier_sessions.values.push_back(
        static_cast<double>(hier.sessions_established));
    flat_sessions.values.push_back(
        static_cast<double>(flat.sessions_established));
    if (capture) hier_sessions.metrics = hier.metrics;
  }

  bench::print_table(
      "collective latency vs world size (64 KB payload, hosts of 6)", "us",
      kWorldSizes, {hier_bcast, flat_bcast, hier_allred, flat_allred});
  bench::print_table("sessions established (lazy worlds)", "sessions",
                     kWorldSizes, {hier_sessions, flat_sessions});

  // Tentpole gate 1: lazy establishment is O(N log N), hard-capped at
  // N^2/8 — a 512-rank world must build a tree's worth of edges, not a
  // mesh's. (Both trees over the sweep touch ~2(N-1) edges.) Smoke caps
  // the sweep, so the gate rides the largest N actually swept.
  const double n_max = static_cast<double>(kWorldSizes.back());
  bench::check_less("gate: lazy sessions at N=" +
                        std::to_string(kWorldSizes.back()) +
                        " stay below N^2/8",
                    hier_sessions.values.back(), n_max * n_max / 8.0);

  // Tentpole gate 2: the hierarchy composition beats the flat binomial
  // tree on the heterogeneous world at every measured N >= 32.
  for (std::size_t i = 0; i < kWorldSizes.size(); ++i) {
    if (kWorldSizes[i] < 32) continue;
    const std::string n_label = std::to_string(kWorldSizes[i]);
    bench::check_less("gate: hier bcast beats flat at N=" + n_label,
                      hier_bcast.values[i], flat_bcast.values[i]);
    bench::check_less("gate: hier allreduce beats flat at N=" + n_label,
                      hier_allred.values[i], flat_allred.values[i]);
  }

  return bench::checks_exit_code();
}
