// CommBench-style group-to-group pattern sweep over the multi-rail sim
// world: Rail / Fan / Dense / P2P-scan patterns with (p, g, k) controls and
// uni/bi/omnidirectional traffic (bench/pattern_gen.hpp), each point swept
// over message sizes on SCI + GM-2 rails — the wire-bound pair whose
// aggregate (~585 MB/s) fits under the host bus, so striping must show
// wherever the wire is the bottleneck.
//
// Per pattern point the bench emits one striped series (full metrics) and,
// on clean runs, one series per rail alone, then gates:
//   * gate: delivered bytes == |pair set| x size x iters, exactly — every
//     pattern pair's payload arrived, none twice;
//   * gate: payload content verified — byte-identical end to end;
//   * gate: striped > best single rail, on wire-bound points only (where
//     bus share / fan-out still exceeds the aggregate rail bandwidth; the
//     fan k=4 and dense-omni points are bus-bound on purpose and carry no
//     striping gate).
// ci/check_bench_json.py additionally requires the (pattern, p, g, k,
// direction) stamps in meta.pattern_points, clean runs retransmit-free and
// final-state healthy, and cross-checks stamps against series labels.
//
// Profiles (NMAD_PATTERN_PROFILE): "clean" (default), "chaos" (PR-3's
// drop 1% / dup 1% / corrupt 0.5% on every rail endpoint; delivery gates
// must hold through the faults), "shift" (NetScenario step to 0.25x on
// rail 0 of every edge mid-run). NMAD_PATTERN_SEED seeds chaos; the
// resolved NMAD_PROGRESS_MODE is stamped into meta (nightly runs both).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "drv/chaos_driver.hpp"
#include "harness.hpp"
#include "pattern_gen.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

struct SweepEntry {
  PatternPoint base;  // direction filled in per sweep iteration
  bool full_only = false;
};

/// The (pattern, p, g, k) sweep: >= 2 points per pattern, crossed with all
/// three directions below. The p=16 rail point needs the sparse-mesh
/// platform (8 edges instead of 120) and only runs in full mode.
const SweepEntry kSweep[] = {
    {p2p_point(2, Direction::kUni), false},
    {p2p_point(8, Direction::kUni), false},
    {{Pattern::kRail, 4, 2, 2, Direction::kUni}, false},
    {{Pattern::kRail, 6, 2, 1, Direction::kUni}, false},  // three groups
    {{Pattern::kRail, 16, 8, 8, Direction::kUni}, true},
    {{Pattern::kFan, 4, 2, 2, Direction::kUni}, false},
    {{Pattern::kFan, 8, 4, 4, Direction::kUni}, false},  // bus-bound fan-out
    {{Pattern::kDense, 4, 2, 2, Direction::kUni}, false},
    {{Pattern::kDense, 8, 4, 2, Direction::kUni}, false},
};

const Direction kDirections[] = {Direction::kUni, Direction::kBi,
                                 Direction::kOmni};

/// PR-3's acceptance fault profile on every rail endpoint.
drv::ChaosConfig pattern_chaos() {
  drv::FaultProfile profile;
  profile.drop = 0.01;
  profile.duplicate = 0.01;
  profile.corrupt = 0.005;
  return drv::ChaosConfig::uniform(profile, /*window=*/3);
}

}  // namespace

int main() {
  set_report_name("patterns");

  const char* profile_env = std::getenv("NMAD_PATTERN_PROFILE");
  std::string profile = profile_env != nullptr ? profile_env : "clean";
  if (profile != "clean" && profile != "chaos" && profile != "shift") {
    std::fprintf(stderr, "patterns: unknown NMAD_PATTERN_PROFILE '%s', "
                 "running clean\n", profile.c_str());
    profile = "clean";
  }
  const char* seed_env = std::getenv("NMAD_PATTERN_SEED");
  const std::uint64_t seed =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 10) : 1;
  if (profile == "chaos") {
    set_report_chaos("drop1_dup1_corrupt05");
    set_report_seed(static_cast<long>(seed));
  } else if (profile == "shift") {
    set_report_chaos("shift_step025");
    set_report_seed(static_cast<long>(seed));
  }
  const bool clean = profile == "clean";

  const std::vector<std::uint64_t> sizes =
      smoke_mode() ? std::vector<std::uint64_t>{128 * 1024, 1024 * 1024}
                   : std::vector<std::uint64_t>{128 * 1024, 512 * 1024,
                                                2 * 1024 * 1024};
  const int iters = smoke_mode() ? 1 : 3;

  const std::vector<netmodel::NicProfile> rails = {netmodel::dolphin_sci(),
                                                   netmodel::myrinet2000_gm2()};
  const netmodel::HostProfile host{};

  std::printf("=== Group-to-group pattern sweep (%s profile, %zu sizes, "
              "%d iters) ===\n\n", profile.c_str(), sizes.size(), iters);
  std::printf("# %-22s %10s %12s %12s %6s\n", "point", "pairs",
              "striped MB/s", "best single", "wire?");

  for (const SweepEntry& entry : kSweep) {
    if (entry.full_only && smoke_mode()) continue;
    for (Direction direction : kDirections) {
      PatternPoint point = entry.base;
      point.direction = direction;
      const std::string label = point.label();
      stamp_pattern_point(to_string(point.pattern), point.p, point.g, point.k,
                          to_string(direction));

      const std::vector<Pair> pairs = generate_pairs(point);
      const bool wire = wire_bound(pairs, rails, host);

      PatternRunOpts opts;
      opts.links = rails;
      opts.msg_bytes = 0;  // per size below
      opts.iters = iters;
      opts.warmup = !smoke_mode();
      if (profile == "chaos") {
        opts.chaos = pattern_chaos();
        opts.chaos_seed = seed;
      } else if (profile == "shift") {
        // Deep step on rail 0 of every edge, early enough that most of the
        // run sees the degraded capacity.
        opts.shape_rail0 = sim::profile_step(sim::us_to_ns(200.0), 0.25);
      }

      Series striped{label + "/striped", {}, {}};
      std::vector<Series> singles;
      if (clean) {
        for (const auto& nic : rails) singles.push_back({label + "/only:" + nic.name, {}, {}});
      }

      std::uint64_t delivered = 0, expected = 0;
      bool data_ok = true;
      double striped_last = 0.0, best_single_last = 0.0;
      for (std::size_t si = 0; si < sizes.size(); ++si) {
        opts.msg_bytes = sizes[si];
        opts.capture_metrics = si + 1 == sizes.size();
        const PatternRunResult r = run_pattern_point(point, opts);
        striped.values.push_back(r.aggregate_mbps);
        striped_last = r.aggregate_mbps;
        if (opts.capture_metrics) striped.metrics = r.metrics;
        delivered += r.delivered_bytes;
        expected += expected_delivered_bytes(point, sizes[si], iters);
        data_ok = data_ok && r.data_ok;

        if (clean) {
          PatternRunOpts single = opts;
          single.capture_metrics = false;
          for (std::size_t li = 0; li < rails.size(); ++li) {
            single.links = {rails[li]};
            const PatternRunResult sr = run_pattern_point(point, single);
            singles[li].values.push_back(sr.aggregate_mbps);
            delivered += sr.delivered_bytes;
            expected += expected_delivered_bytes(point, sizes[si], iters);
            data_ok = data_ok && sr.data_ok;
            if (si + 1 == sizes.size()) {
              best_single_last = std::max(best_single_last, sr.aggregate_mbps);
            }
          }
        }
      }

      std::printf("%-24s %10zu %12.1f %12.1f %6s\n", label.c_str(),
                  pairs.size(), striped_last, best_single_last,
                  wire ? "yes" : "no");

      record_series("MB/s", sizes, striped);
      for (const Series& s : singles) record_series("MB/s", sizes, s);

      // Delivery invariants hold on every profile: the pair set's payload
      // arrives exactly once per timed wave, byte-identical, even under
      // injected faults (the reliability layer's contract).
      check("gate: delivered bytes match pair set [" + label + "]",
            static_cast<double>(delivered), static_cast<double>(expected), 0.0);
      check("gate: payload content verified [" + label + "]",
            data_ok ? 1.0 : 0.0, 1.0, 0.0);
      // The striping claim, gated only where the wire (not the host bus)
      // is the bottleneck and the run is unperturbed.
      if (clean && wire) {
        check_greater("gate: striped beats best single rail [" + label + "]",
                      striped_last, best_single_last);
      }
    }
  }

  std::printf("\n");
  return checks_exit_code();
}
