// Figure 2 — Raw performance of NewMadeleine over Myri-10G for regular and
// multi-segment messages: (a) latency 4 B..32 KB, (b) bandwidth 32 KB..8 MB.
// Five series: regular, 2-segment, 2-segment + opportunistic aggregation,
// 4-segment, 4-segment + opportunistic aggregation.

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig myri_only(const char* strategy) {
  core::PlatformConfig cfg;
  cfg.links = {netmodel::myri10g()};
  cfg.strategy = strategy;
  return cfg;
}

}  // namespace

int main() {
  set_report_name("fig2_myri_raw");
  std::printf("=== Figure 2: raw NewMadeleine over Myri-10G ===\n\n");

  const auto lat_sizes = latency_sizes();
  const auto bw_sizes = bandwidth_sizes();

  const std::vector<std::pair<const char*, PingPongOpts>> variants = {
      {"regular", {.segments = 1}},
      {"2seg", {.segments = 2}},
      {"2seg+agg", {.segments = 2}},
      {"4seg", {.segments = 4}},
      {"4seg+agg", {.segments = 4}},
  };
  const std::vector<const char*> strategies = {"single_rail", "single_rail",
                                               "aggreg", "single_rail", "aggreg"};

  std::vector<Series> lat, bw;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    lat.push_back(sweep_latency(myri_only(strategies[i]), variants[i].first,
                                lat_sizes, variants[i].second));
    bw.push_back(sweep_bandwidth(myri_only(strategies[i]), variants[i].first,
                                 bw_sizes, variants[i].second));
  }

  print_table("Fig 2(a): transfer time over Myri-10G", "us", lat_sizes, lat);
  print_table("Fig 2(b): bandwidth over Myri-10G", "MB/s", bw_sizes, bw);

  // Paper §3.1: latency 2.8 us, maximal bandwidth ~1200 MB/s.
  check("Fig2 regular 4B one-way latency (us)", lat[0].values.front(), 2.8, 0.15);
  check("Fig2 regular 8MB bandwidth (MB/s)", bw[0].values.back(), 1200.0, 0.10);
  // Multi-segment small messages pay per-packet overhead...
  check_greater("Fig2 4seg 64B latency vs regular (ratio)",
                lat[3].values[4] / lat[0].values[4], 1.3);
  // ...which opportunistic aggregation recovers almost entirely.
  check_less("Fig2 4seg+agg 64B latency vs regular (ratio)",
             lat[4].values[4] / lat[0].values[4], 1.15);
  // At large sizes all variants converge.
  check("Fig2 2seg 8MB bandwidth ~= regular (MB/s)", bw[1].values.back(),
        bw[0].values.back(), 0.05);
  return checks_exit_code();
}
