// Ablation A4 — the paper's future work (§4): "our current implementation
// is unable to take advantage of concurrent data transfers that do not
// involve DMA operations. We are currently designing a multi-threaded
// implementation that will process parallel PIO transfers on
// multiprocessor machines." Giving the progression engine more cores lets
// sub-threshold PIO transfers on different NICs overlap, which should move
// the greedy strategy's small-message behavior toward the multi-rail ideal.

#include <cstdio>

#include "util/fmt.hpp"

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig greedy_with_cores(int cores) {
  core::PlatformConfig cfg = core::paper_platform("greedy");
  cfg.host_a.pio_cores = cores;
  cfg.host_b.pio_cores = cores;
  return cfg;
}

}  // namespace

int main() {
  set_report_name("abl_parallel_pio");
  std::printf("=== Ablation A4: parallel PIO (multi-threaded progression) ===\n\n");

  const auto sizes = doubling_sizes(256, 16 * 1024);
  const PingPongOpts two_seg{.segments = 2};

  std::vector<Series> lat;
  for (int cores : {1, 2, 4}) {
    lat.push_back(sweep_latency(greedy_with_cores(cores),
                                util::sformat("greedy 2seg %dcore", cores), sizes,
                                two_seg));
  }
  print_table("A4: 2-segment greedy latency vs progression cores", "us", sizes, lat);

  // With >= 2 cores the two PIO transfers overlap: visible gain at 8-16 KB.
  const std::size_t idx_8k = sizes.size() - 2;
  check_greater("A4 1core/2core latency at 8K (ratio)",
                lat[0].values[idx_8k] / lat[1].values[idx_8k], 1.15);
  // A third/fourth core adds nothing for two rails.
  check("A4 4core ~= 2core latency at 8K (us)", lat[2].values[idx_8k],
        lat[1].values[idx_8k], 0.02);
  return checks_exit_code();
}
