// Figure 4 — Performance of the greedy balancing strategy with 2-segment
// messages: the two segments go down Myri-10G and Quadrics simultaneously,
// compared against forcing both segments (aggregated) onto a single rail.
//
// Expected shape (paper §3.2): balancing wins only beyond ~16 KB total
// (8 KB segments) because smaller packets are PIO transfers that serialize
// on the CPU; at large sizes the two rails aggregate to ~1675 MB/s, capped
// by the host I/O bus.

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig one_rail(netmodel::NicProfile nic) {
  core::PlatformConfig cfg;
  cfg.links = {std::move(nic)};
  cfg.strategy = "aggreg";
  return cfg;
}

}  // namespace

int main() {
  set_report_name("fig4_greedy_2seg");
  std::printf("=== Figure 4: greedy balancing, 2-segment messages ===\n\n");

  const auto lat_sizes = latency_sizes();
  const auto bw_sizes = bandwidth_sizes();
  const PingPongOpts two_seg{.segments = 2};

  std::vector<Series> lat;
  lat.push_back(sweep_latency(one_rail(netmodel::myri10g()), "2agg@myri",
                              lat_sizes, two_seg));
  lat.push_back(sweep_latency(one_rail(netmodel::quadrics_qm500()),
                              "2agg@quadrics", lat_sizes, two_seg));
  lat.push_back(
      sweep_latency(core::paper_platform("greedy"), "2seg balanced", lat_sizes, two_seg));

  std::vector<Series> bw;
  bw.push_back(sweep_bandwidth(one_rail(netmodel::myri10g()), "2agg@myri",
                               bw_sizes, two_seg));
  bw.push_back(sweep_bandwidth(one_rail(netmodel::quadrics_qm500()),
                               "2agg@quadrics", bw_sizes, two_seg));
  bw.push_back(
      sweep_bandwidth(core::paper_platform("greedy"), "2seg balanced", bw_sizes, two_seg));

  print_table("Fig 4(a): 2-segment latency", "us", lat_sizes, lat);
  print_table("Fig 4(b): 2-segment bandwidth", "MB/s", bw_sizes, bw);

  // Paper: 1675 MB/s peak for the greedy strategy.
  check("Fig4 balanced 8MB bandwidth (MB/s)", bw[2].values.back(), 1675.0, 0.08);
  // Balanced beats the best single rail for large messages...
  check_greater("Fig4 balanced/best-single bandwidth at 8MB (ratio)",
                bw[2].values.back() / std::max(bw[0].values.back(), bw[1].values.back()),
                1.25);
  // ...but loses to single-rail aggregation for small ones (PIO serializes).
  check_greater("Fig4 balanced 256B latency vs quadrics-agg (ratio)",
                lat[2].values[6] / lat[1].values[6], 1.0);
  // Crossover: at 32KB total (16KB segments, DMA path) balancing pays.
  check_less("Fig4 balanced 32K latency vs quadrics-agg (ratio)",
             lat[2].values.back() / lat[1].values.back(), 1.0);
  return checks_exit_code();
}
