// Figure 3 — Raw performance of NewMadeleine over Quadrics for regular and
// multi-segment messages (same protocol as Figure 2, on the Elan rail).
// Paper §3.1: "the gain of aggregating small packets on Quadrics is even
// bigger than on Myri-10G."

#include <cstdio>

#include "harness.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig quadrics_only(const char* strategy) {
  core::PlatformConfig cfg;
  cfg.links = {netmodel::quadrics_qm500()};
  cfg.strategy = strategy;
  return cfg;
}

}  // namespace

int main() {
  set_report_name("fig3_quadrics_raw");
  std::printf("=== Figure 3: raw NewMadeleine over Quadrics ===\n\n");

  const auto lat_sizes = latency_sizes();
  const auto bw_sizes = bandwidth_sizes();

  const std::vector<std::pair<const char*, PingPongOpts>> variants = {
      {"regular", {.segments = 1}},
      {"2seg", {.segments = 2}},
      {"2seg+agg", {.segments = 2}},
      {"4seg", {.segments = 4}},
      {"4seg+agg", {.segments = 4}},
  };
  const std::vector<const char*> strategies = {"single_rail", "single_rail",
                                               "aggreg", "single_rail", "aggreg"};

  std::vector<Series> lat, bw;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    lat.push_back(sweep_latency(quadrics_only(strategies[i]), variants[i].first,
                                lat_sizes, variants[i].second));
    bw.push_back(sweep_bandwidth(quadrics_only(strategies[i]), variants[i].first,
                                 bw_sizes, variants[i].second));
  }

  print_table("Fig 3(a): transfer time over Quadrics", "us", lat_sizes, lat);
  print_table("Fig 3(b): bandwidth over Quadrics", "MB/s", bw_sizes, bw);

  // Paper §3.1: latency 1.7 us, maximal bandwidth ~850 MB/s.
  check("Fig3 regular 4B one-way latency (us)", lat[0].values.front(), 1.7, 0.15);
  check("Fig3 regular 8MB bandwidth (MB/s)", bw[0].values.back(), 850.0, 0.10);
  check_greater("Fig3 4seg 64B latency vs regular (ratio)",
                lat[3].values[4] / lat[0].values[4], 1.3);
  check_less("Fig3 4seg+agg 64B latency vs regular (ratio)",
             lat[4].values[4] / lat[0].values[4], 1.15);
  return checks_exit_code();
}
