// Threaded progression benchmark: the same one-way transfer sweep run once
// with serial progression (the application thread drives the engine) and
// once with per-rail progress threads feeding off the SPSC submission
// rings.
//
// Simulated transfer performance is a function of the event timeline, not
// of which OS thread steps it — so the threaded curve must match the
// serial curve: any regression means the progression engine reordered or
// delayed work (submissions stalling in the ring, a progress thread
// failing to pick up a deferred pump). The aggregate large-message
// bandwidth check makes that contract a CI gate.
//
// Methodology: one-way (not the harness ping-pong), because the echo leg
// is submitted by the application *after* a wait — and in threaded mode
// the progress threads legitimately keep draining trailing events past
// the wait's predicate, which shifts the echo's virtual submission time.
// A one-way burst posted under Session::submission_burst() (which holds
// the world mutex, reproducing the serial optimization window) is
// timeline-identical in both modes.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "harness.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig with_mode(core::ProgressMode mode) {
  core::PlatformConfig cfg = core::paper_platform("aggreg_greedy");
  cfg.progress_mode = mode;
  return cfg;
}

/// One-way time (µs) for `total` bytes split into `segments` messages,
/// posted as one burst A->B.
double oneway_us(core::TwoNodePlatform& p, std::uint64_t total, int segments,
                 int iters) {
  static std::vector<std::byte> payload, sink;
  if (payload.size() < total) {
    util::Xoshiro256 rng(0x7417eaded);
    payload.resize(total);
    for (auto& x : payload) x = std::byte(rng.next() & 0xff);
    sink.resize(total);
  }

  const auto nseg = static_cast<std::uint64_t>(segments);
  const std::uint64_t base = total / nseg;
  double sum_us = 0.0;
  for (int iter = 0; iter < iters; ++iter) {
    std::vector<core::RecvHandle> recvs;
    std::vector<core::SendHandle> sends;
    std::uint64_t off = 0;
    for (std::uint64_t i = 0; i < nseg; ++i) {
      const std::uint64_t len = (i + 1 == nseg) ? total - off : base;
      recvs.push_back(p.b().irecv(
          p.gate_ba(), 0, std::span<std::byte>(sink.data() + off, len)));
      off += len;
    }
    // Make the receives matchable before any send event fires: without
    // this, the wall-clock race between B's ring drain and A's wire
    // events can push a message through the (slower) unexpected path.
    p.b().flush_submissions();
    sim::TimeNs t0 = 0;
    {
      // One optimization window for the whole burst, as in serial mode.
      auto burst = p.a().submission_burst();
      t0 = p.now();
      off = 0;
      for (std::uint64_t i = 0; i < nseg; ++i) {
        const std::uint64_t len = (i + 1 == nseg) ? total - off : base;
        sends.push_back(p.a().isend(
            p.gate_ab(), 0,
            std::span<const std::byte>(payload.data() + off, len)));
        off += len;
      }
    }
    p.b().wait_all(sends, recvs);
    sim::TimeNs done = t0;
    for (const auto& r : recvs) done = std::max(done, r->completion_time());
    sum_us += sim::ns_to_us(done - t0);
  }
  return sum_us / iters;
}

Series sweep_oneway(const core::PlatformConfig& config, std::string label,
                    const std::vector<std::uint64_t>& sizes, int segments) {
  core::TwoNodePlatform platform(config);
  const int iters = smoke_mode() ? 1 : 3;
  Series series;
  series.label = std::move(label);
  for (const auto size : sizes) {
    series.values.push_back(oneway_us(platform, size, segments, iters));
  }
  obs::MetricsRegistry registry;
  register_platform_metrics(registry, platform);
  series.metrics = registry.snapshot();
  return series;
}

Series to_bandwidth(Series s, const std::vector<std::uint64_t>& sizes) {
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    s.values[i] = static_cast<double>(sizes[i]) / s.values[i];  // B/µs == MB/s
  }
  return s;
}

double aggregate(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

}  // namespace

int main() {
  set_report_name("threaded_pingpong");
  std::printf(
      "=== Threaded progression: serial vs per-rail progress threads ===\n\n");

  constexpr int kSegments = 2;
  const auto bw_sizes = bandwidth_sizes();
  std::vector<Series> bw;
  bw.push_back(to_bandwidth(sweep_oneway(with_mode(core::ProgressMode::kSerial),
                                         "serial", bw_sizes, kSegments),
                            bw_sizes));
  bw.push_back(
      to_bandwidth(sweep_oneway(with_mode(core::ProgressMode::kThreaded),
                                "threaded", bw_sizes, kSegments),
                   bw_sizes));
  print_table("Threaded vs serial progression, 2-segment one-way bandwidth",
              "MB/s", bw_sizes, bw);

  // The gate: threaded progression must not cost simulated bandwidth.
  // Aggregate over the whole large-message sweep (32 KB .. 8 MB); the
  // 0.999 factor only absorbs float noise — the curves should be equal.
  const double serial_agg = aggregate(bw[0].values);
  const double threaded_agg = aggregate(bw[1].values);
  check_greater("threaded aggregate large-msg bandwidth >= serial (MB/s)",
                threaded_agg, serial_agg * 0.999);
  check("threaded peak (8MB) bandwidth == serial", bw[1].values.back(),
        bw[0].values.back(), 0.001);

  // Small-message side of the same contract: per-rail threads must not add
  // virtual latency either (the paper's polling-gap argument is about real
  // NICs; in simulation the timelines coincide exactly).
  const auto lat_sizes = latency_sizes();
  std::vector<Series> lat;
  lat.push_back(sweep_oneway(with_mode(core::ProgressMode::kSerial), "serial",
                             lat_sizes, kSegments));
  lat.push_back(sweep_oneway(with_mode(core::ProgressMode::kThreaded),
                             "threaded", lat_sizes, kSegments));
  print_table("Threaded vs serial progression, 2-segment one-way latency",
              "us", lat_sizes, lat);
  check("threaded 4B latency == serial", lat[1].values.front(),
        lat[0].values.front(), 0.001);
  check("threaded 32KB latency == serial", lat[1].values.back(),
        lat[0].values.back(), 0.001);

  return checks_exit_code();
}
