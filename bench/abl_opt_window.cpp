// Ablation A5 — the optimization window (paper §2). "The communication
// support accumulates packets while the NIC is busy and once the NIC
// becomes idle, the optimizer processes the backlog of accumulated
// packets... This approach seamlessly allows the building of a packet
// optimization window during phases when application execution is
// communication-bounded while keeping the cost of communication requests
// low when application execution is CPU-bounded."
//
// We submit a burst of 16 small messages with increasing inter-submission
// spacing and watch the window collapse: dense bursts aggregate into one
// packet; sparse submissions (CPU-bounded application) go out one by one
// with no added latency.

#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "sim/time.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

struct WindowResult {
  std::uint64_t packets = 0;
  double total_us = 0.0;
};

WindowResult run_spaced_burst(double spacing_us) {
  core::TwoNodePlatform p(core::paper_platform("aggreg_greedy"));
  constexpr int kMessages = 16;
  constexpr std::size_t kSize = 128;
  static std::vector<std::byte> payload(kSize, std::byte{0x61});
  std::vector<std::vector<std::byte>> sinks(kMessages,
                                            std::vector<std::byte>(kSize));

  std::vector<core::RecvHandle> recvs;
  std::vector<core::SendHandle> sends;
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
  }
  // Submissions paced by the "application": message i at t = i * spacing.
  for (int i = 0; i < kMessages; ++i) {
    p.world().engine().schedule(
        sim::us_to_ns(spacing_us) * i,
        [&p, &sends] { sends.push_back(p.a().isend(p.gate_ab(), 0, payload)); });
  }
  auto done = [&] {
    if (sends.size() < kMessages) return false;
    for (const auto& r : recvs) {
      if (!r->completed()) return false;
    }
    return true;
  };
  p.world().engine().run_until(done);

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  WindowResult result;
  result.packets = gate.rail(0).tx.packets[0] + gate.rail(1).tx.packets[0];
  sim::TimeNs last = 0;
  for (const auto& r : recvs) last = std::max(last, r->completion_time());
  result.total_us = sim::ns_to_us(last);
  char label[32];
  std::snprintf(label, sizeof(label), "spacing=%.2fus", spacing_us);
  record_metrics(label, p);
  return result;
}

}  // namespace

int main() {
  set_report_name("abl_opt_window");
  std::printf("=== Ablation A5: the NIC-activity optimization window ===\n\n");
  std::printf("# 16 x 128B messages, submission spacing swept\n");
  std::printf("# %-14s %-10s %s\n", "spacing_us", "packets", "last_delivery_us");

  std::vector<double> spacings{0.0, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0};
  std::vector<WindowResult> results;
  for (double s : spacings) {
    results.push_back(run_spaced_burst(s));
    std::printf("%-16.2f %-10llu %.2f\n", s,
                static_cast<unsigned long long>(results.back().packets),
                results.back().total_us);
  }
  std::printf("\n");

  // Dense burst: full aggregation into one packet.
  check("A5 packets at spacing 0 (count)", static_cast<double>(results[0].packets),
        1.0, 0.0);
  // Sparse submissions: the window never forms; every message goes alone.
  check("A5 packets at spacing 20us (count)",
        static_cast<double>(results.back().packets), 16.0, 0.0);
  // Packet count grows monotonically as the application becomes
  // CPU-bounded.
  bool monotone = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    monotone = monotone && results[i].packets >= results[i - 1].packets;
  }
  check_greater("A5 packet count monotone in spacing (1=yes)",
                monotone ? 1.0 : 0.0, 0.5);
  // And sparse submission adds no queueing: the last delivery lands about
  // one message latency after the last submission.
  const double sparse_overhead = results.back().total_us - 20.0 * 15;
  check_less("A5 sparse last-delivery minus last-submission (us)",
             sparse_overhead, 5.0);
  return checks_exit_code();
}
