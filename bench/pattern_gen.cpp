#include "pattern_gen.hpp"

#include <algorithm>
#include <cstring>

#include "drv/sim_driver.hpp"
#include "util/panic.hpp"
#include "util/rng.hpp"

namespace nmad::bench {

const char* to_string(Pattern pattern) noexcept {
  switch (pattern) {
    case Pattern::kP2P: return "p2p";
    case Pattern::kRail: return "rail";
    case Pattern::kFan: return "fan";
    case Pattern::kDense: return "dense";
  }
  return "?";
}

const char* to_string(Direction direction) noexcept {
  switch (direction) {
    case Direction::kUni: return "uni";
    case Direction::kBi: return "bi";
    case Direction::kOmni: return "omni";
  }
  return "?";
}

bool PatternPoint::valid() const noexcept {
  if (p < 2 || g < 1 || k < 1) return false;
  if (p % g != 0 || k > g) return false;
  if (pattern != Pattern::kP2P && p / g < 2) return false;
  return true;
}

std::string PatternPoint::label() const {
  return std::string(to_string(pattern)) + "/" + to_string(direction) + "/p" +
         std::to_string(p) + "g" + std::to_string(g) + "k" + std::to_string(k);
}

PatternPoint p2p_point(std::size_t p, Direction direction) {
  return PatternPoint{Pattern::kP2P, p, 1, 1, direction};
}

namespace {

/// Append the pattern's pairs with group `root` as the sender group.
void emit_root(const PatternPoint& pt, std::size_t root,
               std::vector<Pair>& out) {
  const std::size_t groups = pt.p / pt.g;
  for (std::size_t c = 0; c < groups; ++c) {
    if (c == root) continue;
    switch (pt.pattern) {
      case Pattern::kRail:
        for (std::size_t i = 0; i < pt.k; ++i) {
          out.push_back({root * pt.g + i, c * pt.g + i});
        }
        break;
      case Pattern::kFan:
        for (std::size_t j = 0; j < pt.k; ++j) {
          out.push_back({root * pt.g, c * pt.g + j});
        }
        break;
      case Pattern::kDense:
        for (std::size_t i = 0; i < pt.k; ++i) {
          for (std::size_t j = 0; j < pt.k; ++j) {
            out.push_back({root * pt.g + i, c * pt.g + j});
          }
        }
        break;
      case Pattern::kP2P:
        NMAD_PANIC("p2p has no root-group expansion");
    }
  }
}

}  // namespace

std::vector<Pair> generate_pairs(const PatternPoint& point) {
  NMAD_ASSERT(point.valid(), "invalid pattern point");
  std::vector<Pair> out;
  if (point.pattern == Pattern::kP2P) {
    out.push_back({0, point.p - 1});
    // bi and omni coincide: with no groups there is nothing more to rotate.
    if (point.direction != Direction::kUni) out.push_back({point.p - 1, 0});
  } else {
    switch (point.direction) {
      case Direction::kUni:
        emit_root(point, 0, out);
        break;
      case Direction::kBi: {
        emit_root(point, 0, out);
        const std::size_t uni = out.size();
        for (std::size_t i = 0; i < uni; ++i) {
          out.push_back({out[i].receiver, out[i].sender});
        }
        break;
      }
      case Direction::kOmni:
        for (std::size_t root = 0; root < point.p / point.g; ++root) {
          emit_root(point, root, out);
        }
        break;
    }
  }

  // Audit the set's structural invariants (pair sets are small; the
  // property tests re-prove these across the whole sweep space).
  for (const Pair& pr : out) {
    NMAD_ASSERT(pr.sender != pr.receiver, "self-send generated");
    NMAD_ASSERT(pr.sender < point.p && pr.receiver < point.p,
                "pair rank out of range");
  }
  std::vector<Pair> sorted = out;
  std::sort(sorted.begin(), sorted.end());
  NMAD_ASSERT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
              "duplicate pair generated");
  NMAD_ASSERT(out.size() == expected_pair_count(point),
              "pair count diverges from the closed form");
  return out;
}

std::size_t expected_pair_count(const PatternPoint& point) {
  NMAD_ASSERT(point.valid(), "invalid pattern point");
  if (point.pattern == Pattern::kP2P) {
    return point.direction == Direction::kUni ? 1 : 2;
  }
  const std::size_t groups = point.p / point.g;
  std::size_t per_root = 0;  // pairs one root group emits
  switch (point.pattern) {
    case Pattern::kRail:
    case Pattern::kFan:
      per_root = point.k * (groups - 1);
      break;
    case Pattern::kDense:
      per_root = point.k * point.k * (groups - 1);
      break;
    case Pattern::kP2P:
      break;
  }
  switch (point.direction) {
    case Direction::kUni: return per_root;
    case Direction::kBi: return 2 * per_root;
    case Direction::kOmni: return groups * per_root;
  }
  return 0;
}

std::size_t max_bus_degree(const std::vector<Pair>& pairs) {
  std::size_t max_rank = 0;
  for (const Pair& pr : pairs) {
    max_rank = std::max({max_rank, pr.sender, pr.receiver});
  }
  std::vector<std::size_t> degree(max_rank + 1, 0);
  for (const Pair& pr : pairs) {
    ++degree[pr.sender];
    ++degree[pr.receiver];
  }
  return pairs.empty() ? 0 : *std::max_element(degree.begin(), degree.end());
}

std::vector<std::pair<std::size_t, std::size_t>> pattern_edges(
    const std::vector<Pair>& pairs) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(pairs.size());
  for (const Pair& pr : pairs) {
    edges.emplace_back(std::min(pr.sender, pr.receiver),
                       std::max(pr.sender, pr.receiver));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<std::size_t> group_labels(std::size_t p, std::size_t g) {
  NMAD_ASSERT(p > 0 && g > 0, "group labels need p > 0 and g > 0");
  std::vector<std::size_t> labels(p);
  for (std::size_t r = 0; r < p; ++r) labels[r] = r / g;
  return labels;
}

bool wire_bound(const std::vector<Pair>& pairs,
                const std::vector<netmodel::NicProfile>& links,
                const netmodel::HostProfile& host) {
  double aggregate = 0.0;
  for (const auto& nic : links) aggregate += nic.dma_bandwidth_mbps;
  const double degree = static_cast<double>(max_bus_degree(pairs));
  return aggregate * degree <= host.bus_bandwidth_mbps;
}

std::uint64_t expected_delivered_bytes(const PatternPoint& point,
                                       std::uint64_t msg_bytes, int iters) {
  return static_cast<std::uint64_t>(expected_pair_count(point)) * msg_bytes *
         static_cast<std::uint64_t>(iters);
}

PatternRunResult run_pattern_point(const PatternPoint& point,
                                   const PatternRunOpts& opts) {
  NMAD_ASSERT(!opts.links.empty(), "pattern run needs at least one rail");
  NMAD_ASSERT(opts.iters >= 1, "pattern run needs at least one timed wave");
  const std::vector<Pair> pairs = generate_pairs(point);

  core::MultiNodeConfig cfg;
  cfg.nodes = point.p;
  cfg.host = netmodel::HostProfile{};
  cfg.links = opts.links;
  cfg.strategy = opts.links.size() > 1 ? opts.strategy : "single_rail";
  cfg.progress_mode = opts.progress_mode;
  // Only the edges the pair set touches get links and gates: a 16-rank
  // p2p point builds 1 edge, not the 120-edge full mesh.
  cfg.edges = pattern_edges(pairs);
  if (opts.chaos) {
    cfg.chaos = opts.chaos;
    cfg.chaos_seed = opts.chaos_seed;
    // Faults require the reliability layer, like the chaos soaks.
    cfg.strat_cfg.reliability.ack_enabled = true;
  }
  core::MultiNodePlatform platform(cfg);

  // Declared after the platform so it is destroyed first; nothing runs the
  // engine after the last wave (the NetScenario lifetime contract).
  std::optional<sim::NetScenario> scenario;
  if (!opts.shape_rail0.empty()) {
    scenario.emplace(platform.world().engine(), platform.world().net());
    std::vector<sim::CapacityPhase> phases = opts.shape_rail0;
    for (auto& phase : phases) phase.at += platform.now();
    for (const auto& [i, j] : cfg.edges) {
      for (const sim::ConstraintId link :
           {platform.sim_endpoint(i, j, 0).tx_link(),
            platform.sim_endpoint(j, i, 0).tx_link()}) {
        scenario->shape_link(link, platform.world().net().capacity(link),
                             phases);
      }
    }
  }

  std::vector<std::vector<std::byte>> payloads, sinks;
  payloads.reserve(pairs.size());
  sinks.reserve(pairs.size());
  for (const Pair& pr : pairs) {
    util::Xoshiro256 rng(opts.payload_seed ^
                         (pr.sender * 0x100000001b3ull + pr.receiver));
    std::vector<std::byte> buf(opts.msg_bytes);
    for (auto& b : buf) b = std::byte(rng.next() & 0xff);
    payloads.push_back(std::move(buf));
    sinks.emplace_back(opts.msg_bytes);
  }

  PatternRunResult result;
  auto wave = [&](bool timed) {
    for (auto& s : sinks) std::memset(s.data(), 0, s.size());
    std::vector<std::vector<core::RecvHandle>> recvs(point.p);
    std::vector<std::vector<core::SendHandle>> sends(point.p);
    // All receives first (pre-posted matching), then the full send set.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const Pair& pr = pairs[i];
      recvs[pr.receiver].push_back(platform.session(pr.receiver)
                                       .irecv(platform.gate(pr.receiver, pr.sender),
                                              0, sinks[i]));
    }
    const sim::TimeNs t0 = platform.now();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const Pair& pr = pairs[i];
      sends[pr.sender].push_back(platform.session(pr.sender)
                                     .isend(platform.gate(pr.sender, pr.receiver),
                                            0, payloads[i]));
    }
    for (std::size_t n = 0; n < point.p; ++n) {
      platform.session(n).wait_all(sends[n], recvs[n]);
    }
    sim::TimeNs done = t0;
    for (const auto& per_node : recvs) {
      for (const auto& h : per_node) done = std::max(done, h->completion_time());
    }
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const bool match = sinks[i] == payloads[i];
      result.data_ok = result.data_ok && match;
      if (timed && match) result.delivered_bytes += opts.msg_bytes;
    }
    if (timed) result.elapsed_us += sim::ns_to_us(done - t0);
  };

  if (opts.warmup) wave(false);
  for (int i = 0; i < opts.iters; ++i) wave(true);

  result.aggregate_mbps =
      result.elapsed_us > 0.0
          ? static_cast<double>(result.delivered_bytes) / result.elapsed_us
          : 0.0;
  if (opts.capture_metrics) {
    obs::MetricsRegistry registry;
    platform.register_metrics(registry);
    result.metrics = registry.snapshot();
  }
  return result;
}

}  // namespace nmad::bench
