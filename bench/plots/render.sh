#!/bin/sh
# Regenerate the paper's figures as SVGs from the benchmark binaries.
#
#   bench/plots/render.sh <build-dir> [out-dir]
#
# Requires gnuplot. Each fig binary prints one or two '#'-headed tables;
# this script splits them into .dat files and renders log-log plots in the
# paper's style (latency: log2 x, log2 y; bandwidth: log2 x, log2 y).
set -eu

BUILD=${1:?usage: render.sh <build-dir> [out-dir]}
OUT=${2:-bench_plots}
mkdir -p "$OUT"

split_tables() {
    # Split stdin into $OUT/<stem>_tableN.dat at each line starting '# Fig'
    # or '# A' (table titles); strip CHECK lines.
    awk -v out="$OUT" -v stem="$1" '
        /^# (Fig|A[0-9])/ { n += 1; next }
        /^CHECK/ { next }
        /^===/ { next }
        n > 0 && NF > 0 { print > (out "/" stem "_table" n ".dat") }
    '
}

for fig in fig2_myri_raw fig3_quadrics_raw fig4_greedy_2seg \
           fig5_greedy_4seg fig6_aggreg_fastest fig7_stripping; do
    "$BUILD/bench/$fig" | split_tables "$fig"
done

command -v gnuplot >/dev/null || {
    echo "tables written to $OUT/; install gnuplot to render SVGs" >&2
    exit 0
}

plot() {
    # plot <dat> <svg> <ylabel> <ncols>
    dat=$1; svg=$2; ylabel=$3; ncols=$4
    {
        echo "set terminal svg size 720,480 background 'white'"
        echo "set output '$OUT/$svg'"
        echo "set logscale xy 2"
        echo "set xlabel 'Total data size (bytes)'"
        echo "set ylabel '$ylabel'"
        echo "set key top left"
        echo "set grid"
        printf "plot "
        i=2
        while [ "$i" -le "$((ncols + 1))" ]; do
            [ "$i" -gt 2 ] && printf ", "
            printf "'%s' using (column(1)):%d with linespoints title 'series %d'" \
                "$OUT/$dat" "$i" "$((i - 1))"
            i=$((i + 1))
        done
        echo
    } | gnuplot
}

# Sizes in the first column carry K/M suffixes; convert in place first.
for f in "$OUT"/*.dat; do
    awk '{
        v = $1
        if (v ~ /K$/) { sub(/K$/, "", v); v *= 1024 }
        else if (v ~ /M$/) { sub(/M$/, "", v); v *= 1048576 }
        $1 = v; print
    }' "$f" > "$f.tmp" && mv "$f.tmp" "$f"
done

plot fig2_myri_raw_table1.dat      fig2a_latency.svg   'Transfer time (us)' 5
plot fig2_myri_raw_table2.dat      fig2b_bandwidth.svg 'Bandwidth (MB/s)'   5
plot fig3_quadrics_raw_table1.dat  fig3a_latency.svg   'Transfer time (us)' 5
plot fig3_quadrics_raw_table2.dat  fig3b_bandwidth.svg 'Bandwidth (MB/s)'   5
plot fig4_greedy_2seg_table1.dat   fig4a_latency.svg   'Transfer time (us)' 3
plot fig4_greedy_2seg_table2.dat   fig4b_bandwidth.svg 'Bandwidth (MB/s)'   3
plot fig5_greedy_4seg_table1.dat   fig5a_latency.svg   'Transfer time (us)' 3
plot fig5_greedy_4seg_table2.dat   fig5b_bandwidth.svg 'Bandwidth (MB/s)'   3
plot fig6_aggreg_fastest_table1.dat fig6_latency.svg   'Transfer time (us)' 3
plot fig7_stripping_table1.dat     fig7_bandwidth.svg  'Bandwidth (MB/s)'   4

echo "figures rendered into $OUT/"
