// Shared benchmark harness: the paper's ping-pong (§3.1) over a simulated
// platform, sweep drivers, table printing, and paper-vs-measured checks.
//
// "The benchmark is a regular ping-pong program where the send (resp.
// recv) sequence is a series of non-blocking send (resp. non-blocking
// recv) operations." A "k-segment message" of total size S is therefore k
// back-to-back non-blocking sends of S/k bytes each, which the strategies
// may aggregate, balance or split.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "obs/registry.hpp"

namespace nmad::bench {

struct PingPongOpts {
  /// Number of equal segments (independent non-blocking sends) per side.
  int segments = 1;
  /// Iterations; the simulation is deterministic, so a handful suffices to
  /// confirm steady state.
  int iters = 3;
};

/// True when NMAD_BENCH_SMOKE is set in the environment (CI smoke runs):
/// iterations are forced to 1 and paper-shape checks become advisory (they
/// print and are recorded in the JSON report but never fail the exit code).
/// Sweep sizes are never thinned — benches index into specific positions.
bool smoke_mode();

/// One-way time (µs) to move `total_size` bytes (split into opts.segments
/// messages) from a to b, at ping-pong steady state.
double pingpong_oneway_us(core::TwoNodePlatform& p, std::uint64_t total_size,
                          const PingPongOpts& opts);

/// Doubling sweep [min_size, max_size].
std::vector<std::uint64_t> doubling_sizes(std::uint64_t min_size,
                                          std::uint64_t max_size);
/// The paper's latency-figure x axis: 4 B .. 32 KB.
std::vector<std::uint64_t> latency_sizes();
/// The paper's bandwidth-figure x axis: 32 KB .. 8 MB.
std::vector<std::uint64_t> bandwidth_sizes();

struct Series {
  std::string label;
  /// One value per sweep size: µs (latency tables) or MB/s (bandwidth).
  std::vector<double> values;
  /// Metrics snapshot of both sessions ("a." / "b." prefixes) taken at the
  /// end of the sweep, before the platform is torn down. Value-typed: safe
  /// to keep and compare after the platform is gone.
  obs::Snapshot metrics;
};

/// Run a full sweep of pingpong_oneway_us over `sizes` on a fresh platform
/// built from `config`; returns one-way times in µs.
Series sweep_latency(const core::PlatformConfig& config, std::string label,
                     const std::vector<std::uint64_t>& sizes,
                     const PingPongOpts& opts);

/// Same sweep, converted to bandwidth (MB/s, 1 MB = 1e6 B — the paper's
/// axis convention).
Series sweep_bandwidth(const core::PlatformConfig& config, std::string label,
                       const std::vector<std::uint64_t>& sizes,
                       const PingPongOpts& opts);

/// Print a gnuplot-ready table: header lines prefixed with '#', then one
/// row per size with one column per series.
void print_table(const std::string& title, const std::string& unit,
                 const std::vector<std::uint64_t>& sizes,
                 const std::vector<Series>& series);

/// Paper-vs-measured shape check; prints PASS/FAIL and returns ok.
bool check(const std::string& what, double measured, double expected,
           double rel_tol);
/// Directional check (measured must exceed bound).
bool check_greater(const std::string& what, double measured, double bound);
bool check_less(const std::string& what, double measured, double bound);

/// Enable the JSON report for this benchmark: on checks_exit_code() a
/// machine-readable BENCH_<name>.json is written to the current directory
/// with every printed series (sizes, values, per-rail metrics) and every
/// check verdict. CI's bench-smoke job gates on this file.
void set_report_name(std::string name);

/// Report configuration stamp, emitted as the JSON's top-level "meta" block
/// (required by ci/check_bench_json.py): progress mode is stamped
/// automatically from the resolved NMAD_PROGRESS_MODE; benches that run
/// chaos profiles or seeded scenarios override the defaults ("none", 0).
void set_report_chaos(std::string profile);
void set_report_seed(long seed);

/// Stamp one group-to-group pattern point into the report's meta block:
/// meta.pattern_points grows one {pattern, p, g, k, direction} entry per
/// call, in call order. The patterns bench stamps every swept point;
/// ci/check_bench_json.py requires the stamps on BENCH_patterns.json and
/// cross-checks them against the emitted series labels.
void stamp_pattern_point(const std::string& pattern, std::size_t p,
                         std::size_t g, std::size_t k,
                         const std::string& direction);

/// Per-report trajectory tolerance, emitted as the JSON's top-level
/// "compare" block. ci/compare_bench_json.py reads it from the *committed
/// baseline* and uses it instead of its --tolerance default for this
/// report. Benches that measure real (wall-clock) time — where rates are
/// machine-dependent — set a loose value so the trajectory gate only
/// catches collapses, not host-to-host variance; virtual-time benches
/// should not call this and inherit the tight default.
void set_report_compare_tolerance(double tolerance);

/// Snapshot both sessions of `p` into the report as a values-free series
/// (for benches that drive platforms by hand instead of via sweep_*).
void record_metrics(const std::string& label, core::TwoNodePlatform& p);

/// Add a sweep series to the report without printing it (print_table
/// records automatically; use this for series that are only analysed).
void record_series(const std::string& unit,
                   const std::vector<std::uint64_t>& sizes, const Series& s);

/// Register both sessions of `p` into `registry` under "a." / "b.".
void register_platform_metrics(obs::MetricsRegistry& registry,
                               core::TwoNodePlatform& p);

/// Exit status helper: 0 if all checks passed so far, 1 otherwise (always 0
/// in smoke mode). Also writes the JSON report if set_report_name was called.
int checks_exit_code();

}  // namespace nmad::bench
