// Many-thread submission benchmark: T application threads concurrently
// inject send/recv operations into the threaded progression engine's
// per-thread submission rings, and the bench reports the sustained
// injection rate (ops/s) and settlement rate as T grows.
//
// Methodology: the coordinator holds Session::submission_burst() — the
// world mutex — for the whole injection phase, so no progress thread can
// drain while the workers push. What is timed is therefore the pure
// submission path: lane lookup, ring push, request bookkeeping — with
// zero contention from the consumer side. The rings are sized at 4x the
// per-worker burst so the lossless backpressure path (counted, not
// dropping) is provably never entered: the zero-stall / zero-overflow
// records below are "gate:" checks that ci/check_bench_json.py enforces
// even in smoke mode.
//
// The injection phase runs in *real* time (that is the quantity the
// per-thread rings exist to improve), so absolute rates are
// machine-dependent; the committed baseline carries a loose per-report
// compare tolerance (see set_report_compare_tolerance) and the trajectory
// gate for this bench is the deterministic "settled" count series plus
// the in-bench checks. The thread-scaling check (T=4 >= 2.5x T=1) is
// enforced only in full mode on hosts with >= 4 hardware threads — on a
// single-core runner the workers time-slice and no speedup exists to
// measure.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

constexpr std::size_t kMsgSize = 1024;  // eager-path message

std::span<const std::byte> payload() {
  static std::vector<std::byte> bytes = [] {
    std::vector<std::byte> v(kMsgSize);
    util::Xoshiro256 rng(0x4a7e5);
    for (auto& x : v) x = std::byte(rng.next() & 0xff);
    return v;
  }();
  return bytes;
}

struct WorkerBuf {
  std::vector<std::byte> sink;
  std::vector<core::SendHandle> sends;
  std::vector<core::RecvHandle> recvs;
};

struct RateResult {
  double submit_ops_per_s = 0.0;   ///< isend+irecv calls per wall second
  double settle_msgs_per_s = 0.0;  ///< messages settled per wall second
  std::uint64_t completions = 0;   ///< completion events enqueued (a+b)
  std::uint64_t submit_stalls = 0;
  std::uint64_t overflows = 0;
  obs::Snapshot metrics;
};

double elapsed_secs(std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t counter(const obs::Snapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// T workers, each injecting `msgs` irecv(B)+isend(A) pairs on its own tag
/// while the coordinator freezes progression with a submission burst; then
/// the burst lifts and settlement is timed separately.
RateResult run_threaded(std::size_t threads, std::uint64_t msgs) {
  core::PlatformConfig cfg = core::paper_platform("aggreg_greedy");
  cfg.progress_mode = core::ProgressMode::kThreaded;
  // 4x headroom over the per-lane burst: the backpressure spin must never
  // trigger, making the zero-stall gates below deterministic.
  cfg.submit_ring_capacity = 4 * msgs;
  cfg.completion_ring_capacity = 4 * msgs;
  core::TwoNodePlatform p(cfg);

  std::vector<WorkerBuf> bufs(threads);
  for (auto& wb : bufs) {
    wb.sink.resize(msgs * kMsgSize);
    wb.sends.reserve(msgs);
    wb.recvs.reserve(msgs);
  }

  RateResult r;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  {
    // Freeze draining: progress threads block on the world mutex, so the
    // timed region below is submission-path work only.
    auto burst = p.a().submission_burst();
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        WorkerBuf& wb = bufs[t];
        const auto tag = static_cast<std::uint32_t>(t);
        for (std::uint64_t i = 0; i < msgs; ++i) {
          wb.recvs.push_back(p.b().irecv(
              p.gate_ba(), tag,
              std::span<std::byte>(wb.sink.data() + i * kMsgSize, kMsgSize)));
          wb.sends.push_back(p.a().isend(p.gate_ab(), tag, payload()));
        }
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = elapsed_secs(t0, t1);
    r.submit_ops_per_s =
        secs > 0.0 ? static_cast<double>(2 * threads * msgs) / secs : 0.0;
  }  // burst released: progression drains every lane

  std::vector<core::SendHandle> sends;
  std::vector<core::RecvHandle> recvs;
  for (auto& wb : bufs) {
    sends.insert(sends.end(), wb.sends.begin(), wb.sends.end());
    recvs.insert(recvs.end(), wb.recvs.begin(), wb.recvs.end());
  }
  const auto t2 = std::chrono::steady_clock::now();
  p.a().wait_all(sends, {});
  p.b().wait_all({}, recvs);
  const auto t3 = std::chrono::steady_clock::now();
  const double secs = elapsed_secs(t2, t3);
  r.settle_msgs_per_s =
      secs > 0.0 ? static_cast<double>(threads * msgs) / secs : 0.0;

  obs::MetricsRegistry registry;
  register_platform_metrics(registry, p);
  r.metrics = registry.snapshot();
  r.completions = counter(r.metrics, "a.progress.completions") +
                  counter(r.metrics, "b.progress.completions");
  r.submit_stalls = counter(r.metrics, "a.progress.submit.stalls") +
                    counter(r.metrics, "b.progress.submit.stalls");
  r.overflows = counter(r.metrics, "a.progress.ring.overflows") +
                counter(r.metrics, "b.progress.ring.overflows");
  return r;
}

/// Single-thread serial-mode reference: the same injection pattern with
/// the app thread submitting straight into the scheduler (no rings). The
/// per-thread submission path must not tax the one-thread case — this
/// series anchors that comparison in the committed baseline.
double run_serial_t1(std::uint64_t msgs) {
  core::PlatformConfig cfg =
      core::pin_serial(core::paper_platform("aggreg_greedy"));
  core::TwoNodePlatform p(cfg);

  WorkerBuf wb;
  wb.sink.resize(msgs * kMsgSize);
  double secs = 0.0;
  {
    auto burst = p.a().submission_burst();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < msgs; ++i) {
      wb.recvs.push_back(p.b().irecv(
          p.gate_ba(), 0,
          std::span<std::byte>(wb.sink.data() + i * kMsgSize, kMsgSize)));
      wb.sends.push_back(p.a().isend(p.gate_ab(), 0, payload()));
    }
    secs = elapsed_secs(t0, std::chrono::steady_clock::now());
  }
  p.a().wait_all(wb.sends, {});
  p.b().wait_all({}, wb.recvs);
  return secs > 0.0 ? static_cast<double>(2 * msgs) / secs : 0.0;
}

}  // namespace

int main() {
  set_report_name("mt_message_rate");
  // Real-time rates vary across hosts; the trajectory compare for this
  // report only flags catastrophic collapses (and any change in the
  // deterministic "settled" series).
  set_report_compare_tolerance(0.95);

  const std::uint64_t msgs = smoke_mode() ? 128 : 512;
  const std::vector<std::uint64_t> thread_counts = {1, 2, 4, 8};

  std::printf("=== Many-thread submission: ops/s vs submitting threads "
              "(%llu msgs/thread) ===\n\n",
              static_cast<unsigned long long>(msgs));

  Series submit{"submit", {}, {}}, settle{"settle", {}, {}};
  Series settled{"settled", {}, {}};
  std::uint64_t expected = 0, completions = 0, stalls = 0, overflows = 0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const auto threads = static_cast<std::size_t>(thread_counts[i]);
    RateResult r = run_threaded(threads, msgs);
    submit.values.push_back(r.submit_ops_per_s);
    settle.values.push_back(r.settle_msgs_per_s);
    settled.values.push_back(static_cast<double>(r.completions));
    expected += 2 * threads * msgs;
    completions += r.completions;
    stalls += r.submit_stalls;
    overflows += r.overflows;
    if (i + 1 == thread_counts.size()) submit.metrics = std::move(r.metrics);
  }
  print_table("Threaded submission/settlement rate vs thread count", "msgs/s",
              thread_counts, {submit, settle});
  // Deterministic companion series: completion events delivered per T.
  // Machine-independent — the trajectory compare catches any lost
  // submission or dropped completion as an exact-count mismatch.
  record_series("msgs", thread_counts, settled);

  Series serial{"serial_t1", {}, {}};
  serial.values.push_back(run_serial_t1(msgs));
  std::printf("serial reference: %.0f msgs/s (1 thread, serial progression)\n\n",
              serial.values[0]);
  record_series("msgs/s", {1}, serial);

  // Losslessness gates (enforced by check_bench_json even in smoke mode):
  // every submitted request settles exactly once, and with 4x-sized rings
  // the counted backpressure paths must never have fired.
  check("gate: completion events == submitted requests",
        static_cast<double>(completions), static_cast<double>(expected), 0.0);
  check("gate: zero submission-ring stalls across sweep",
        static_cast<double>(stalls), 0.0, 0.0);
  check("gate: zero completion-ring overflows across sweep",
        static_cast<double>(overflows), 0.0, 0.0);

  // Thread scaling: only meaningful where the workers can actually run in
  // parallel. check() is advisory in smoke mode; on <4 hardware threads
  // the check is skipped entirely rather than recorded as a false FAIL.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) {
    check_greater("submit rate scaling T=4 / T=1 (x)",
                  submit.values[2] / submit.values[0], 2.5);
  } else {
    std::printf("NOTE  scaling check skipped: %u hardware thread(s) < 4\n", hw);
  }

  return checks_exit_code();
}
