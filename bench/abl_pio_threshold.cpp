// Ablation A1 — PIO-threshold sensitivity. The paper attributes the
// multi-rail crossover ("interesting from 16 KB total, i.e. segments
// greater than 8 KB" — exactly the PIO threshold) to the PIO/DMA boundary
// of the drivers: below it transfers monopolize the CPU and serialize, so
// greedy balancing cannot beat the best single rail until both segments
// cross onto the DMA path. Sweeping the threshold must move the crossover
// proportionally: with 2 equal segments it lands in (2t, 4t] on a
// doubling sweep.

#include <algorithm>
#include <cstdio>

#include "harness.hpp"
#include "util/fmt.hpp"

using namespace nmad;
using namespace nmad::bench;

namespace {

core::PlatformConfig platform_with_threshold(const char* strategy,
                                             std::uint32_t threshold,
                                             int rails /* 0=myri,1=quad,2=both */) {
  core::PlatformConfig cfg;
  netmodel::NicProfile myri = netmodel::myri10g();
  netmodel::NicProfile quad = netmodel::quadrics_qm500();
  myri.pio_threshold = threshold;
  quad.pio_threshold = threshold;
  switch (rails) {
    case 0: cfg.links = {myri}; break;
    case 1: cfg.links = {quad}; break;
    default: cfg.links = {myri, quad}; break;
  }
  cfg.strategy = strategy;
  cfg.strat_cfg.min_chunk = threshold + 1;
  return cfg;
}

/// Smallest sweep size at which greedy 2-rail balancing *decisively* beats
/// the best single-rail reference (>10% faster — near the PIO boundary the
/// eager paths can tie within a percent, which is noise, not the DMA
/// overlap the paper attributes the crossover to). 0 when it never does.
std::uint64_t crossover_size(std::uint32_t threshold,
                             const std::vector<std::uint64_t>& sizes) {
  const PingPongOpts two_seg{.segments = 2};
  Series balanced = sweep_latency(
      platform_with_threshold("greedy", threshold, 2),
      util::sformat("balanced t=%uK", threshold / 1024), sizes, two_seg);
  record_series("us", sizes, balanced);
  Series myri = sweep_latency(platform_with_threshold("aggreg", threshold, 0),
                              "myri", sizes, two_seg);
  Series quad = sweep_latency(platform_with_threshold("aggreg", threshold, 1),
                              "quadrics", sizes, two_seg);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double best_single = std::min(myri.values[i], quad.values[i]);
    if (balanced.values[i] < 0.9 * best_single) return sizes[i];
  }
  return 0;
}

}  // namespace

int main() {
  set_report_name("abl_pio_threshold");
  std::printf("=== Ablation A1: PIO threshold vs multi-rail crossover ===\n\n");
  const auto sizes = doubling_sizes(1024, 1024 * 1024);

  std::printf("# %-14s %-22s %s\n", "pio_threshold", "crossover_total_size",
              "crossover/threshold");
  std::vector<std::uint64_t> crossovers;
  std::vector<std::uint32_t> thresholds{2u * 1024, 4u * 1024, 8u * 1024,
                                        16u * 1024};
  for (std::uint32_t threshold : thresholds) {
    const std::uint64_t cross = crossover_size(threshold, sizes);
    crossovers.push_back(cross);
    std::printf("%-16u %-22llu %.1f\n", threshold,
                static_cast<unsigned long long>(cross),
                static_cast<double>(cross) / threshold);
  }
  std::printf("\n");

  // The crossover must move monotonically with the threshold...
  bool monotone = true;
  for (std::size_t i = 1; i < crossovers.size(); ++i) {
    monotone = monotone && crossovers[i] >= crossovers[i - 1];
  }
  check_greater("A1 crossover monotone in threshold (1=yes)",
                monotone ? 1.0 : 0.0, 0.5);
  // ...and for every threshold t it lands in (2t, 4t]: balancing pays off
  // once both segments exceed the PIO boundary (paper: segments > 8 KB for
  // the 8 KB threshold).
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const double ratio = static_cast<double>(crossovers[i]) / thresholds[i];
    check_greater(
        util::sformat("A1 crossover/threshold > 2 (t=%uK)", thresholds[i] / 1024),
        ratio, 2.0);
    check_less(
        util::sformat("A1 crossover/threshold <= 4 (t=%uK)", thresholds[i] / 1024),
        ratio, 4.0 + 1e-9);
  }
  return checks_exit_code();
}
