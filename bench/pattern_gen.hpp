// CommBench-style group-to-group pattern generator and runner.
//
// CommBench (Hidayetoglu et al.; markstock/CommBench) describes multi-NIC
// traffic with parameterized group-to-group patterns: p ranks are split
// into G = p/g groups of g ranks, of which the first k per group are
// "active", and a pattern names the exact sender->receiver pair set
// between a root group and the others. This header reproduces that
// vocabulary over the simulated multi-rail world so every traffic shape —
// not just the paper's ping-pong — has a first-class, sweepable harness.
//
// Patterns (G = p/g groups, ranks c*g..c*g+g-1 form group c):
//   * p2p   — a single pair (0, p-1); g and k are insignificant and are
//             normalized to 1 in the canonical point.
//   * rail  — active rank i of the root group sends to the *corresponding*
//             rank of every other group: (i, c*g+i), i < k, c != root.
//             Pairs are endpoint-disjoint, the shape that isolates rails.
//   * fan   — the root group's leader sends to the first k ranks of every
//             other group: (root*g, c*g+j), j < k. One sender fans out,
//             so the sender's I/O bus is the contended resource.
//   * dense — every active root rank sends to every active rank of every
//             other group: (root*g+i, c*g+j), i,j < k. The densest
//             group-to-group load.
//
// Directions:
//   * uni  — the pattern with group 0 as root, as listed above;
//   * bi   — uni plus every pair reversed (both directions concurrently);
//   * omni — the union of the pattern over every group as root (for p2p,
//            which has no groups, omni == bi).
//
// The closed-form pair counts (tested in tests/test_pattern_gen.cpp):
//
//   pattern   uni           bi            omni
//   p2p       1             2             2
//   rail      k(G-1)        2k(G-1)       kG(G-1)
//   fan       k(G-1)        2k(G-1)       kG(G-1)
//   dense     k^2(G-1)      2k^2(G-1)     k^2 G(G-1)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "obs/registry.hpp"
#include "sim/net_scenario.hpp"

namespace nmad::bench {

enum class Pattern { kP2P, kRail, kFan, kDense };
enum class Direction { kUni, kBi, kOmni };

const char* to_string(Pattern pattern) noexcept;
const char* to_string(Direction direction) noexcept;

/// One ordered sender->receiver pair of a pattern's pair set.
struct Pair {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  friend auto operator<=>(const Pair&, const Pair&) = default;
};

/// One point of the (pattern, p, g, k, direction) sweep space.
struct PatternPoint {
  Pattern pattern = Pattern::kP2P;
  std::size_t p = 2;  ///< total ranks
  std::size_t g = 1;  ///< group size (p % g == 0)
  std::size_t k = 1;  ///< active senders/receivers per group (k <= g)
  Direction direction = Direction::kUni;

  /// Whether the point is well-formed: p >= 2, g divides p, 1 <= k <= g,
  /// and group patterns (rail/fan/dense) have at least two groups.
  [[nodiscard]] bool valid() const noexcept;

  /// Canonical label, e.g. "rail/uni/p8g4k2" — the prefix of every JSON
  /// series this point emits and the form ci/check_bench_json.py matches
  /// stamped points against.
  [[nodiscard]] std::string label() const;
};

/// A p2p point with g and k normalized to 1 (they are insignificant).
PatternPoint p2p_point(std::size_t p, Direction direction);

/// The exact ordered pair set of a point, in deterministic order. The
/// result is duplicate-free and self-send-free; panics on an invalid point.
std::vector<Pair> generate_pairs(const PatternPoint& point);

/// Closed-form |generate_pairs(point)| (table above); panics when invalid.
std::size_t expected_pair_count(const PatternPoint& point);

/// Max over ranks of concurrent transfers crossing that rank's I/O bus
/// (out-degree + in-degree) — the fan-in/fan-out the host bus divides by.
std::size_t max_bus_degree(const std::vector<Pair>& pairs);

/// Undirected {min, max} node pairs touched by the pair set, sorted and
/// deduplicated — the sparse edge set MultiNodeConfig::edges consumes, so
/// a 16-rank point builds only the links it uses instead of a full mesh.
std::vector<std::pair<std::size_t, std::size_t>> pattern_edges(
    const std::vector<Pair>& pairs);

/// Contiguous group labels: rank r belongs to group r / g — the pattern
/// vocabulary's "ranks c*g..c*g+g-1 form group c", generalized to ragged
/// tails (the last group holds p % g ranks when g does not divide p).
/// This is the label vector MultiNodeConfig::hosts consumes, so a
/// pattern-style grouping doubles as a locality topology for the
/// hierarchical collectives (coll/topology.hpp).
std::vector<std::size_t> group_labels(std::size_t p, std::size_t g);

/// True when every pair can run at the full aggregate rail bandwidth: the
/// busiest endpoint's bus share (bus / max_bus_degree) still exceeds the
/// sum of the rails' DMA bandwidths. On such points striping *must* beat
/// the best single rail; on bus-bound points the bus, not the wire, caps
/// the transfer and rail aggregation cannot show.
bool wire_bound(const std::vector<Pair>& pairs,
                const std::vector<netmodel::NicProfile>& links,
                const netmodel::HostProfile& host);

// --- Driving one point over the simulated world ------------------------------

struct PatternRunOpts {
  /// Rails of every used edge; one entry drives a single_rail strategy.
  std::vector<netmodel::NicProfile> links;
  /// Strategy for multi-rail runs (single-link runs force "single_rail").
  std::string strategy = "split_balance";
  std::uint64_t msg_bytes = 512 * 1024;
  /// Timed waves; every wave posts the full pair set and barriers on it.
  int iters = 1;
  /// One untimed warm-up wave before the timed ones.
  bool warmup = false;
  /// kDefault follows NMAD_PROGRESS_MODE (the bench's both-modes knob);
  /// tests pin kSerial for determinism.
  core::ProgressMode progress_mode = core::ProgressMode::kDefault;
  /// Fault injection on every rail endpoint (reliability acks are enabled
  /// automatically); delivery and content gates must still hold.
  std::optional<drv::ChaosConfig> chaos;
  std::uint64_t chaos_seed = 1;
  /// Optional NetScenario shaping: when non-empty, rail 0 of every used
  /// edge is shaped (both directions) by these phases — `at` relative to
  /// the platform's start, `scale` a multiple of the nominal capacity.
  /// Exercises pattern shapes under shifting link conditions.
  std::vector<sim::CapacityPhase> shape_rail0;
  /// Snapshot the platform's metrics into the result after the last wave.
  bool capture_metrics = false;
  std::uint64_t payload_seed = 0x9e3779b97f4a7c15ull;
};

struct PatternRunResult {
  /// Sum over timed waves of (last receive completion - wave start), µs of
  /// virtual time.
  double elapsed_us = 0.0;
  /// Payload bytes received *and verified* across the timed waves; the
  /// delivery gate checks this equals pairs * msg_bytes * iters exactly.
  std::uint64_t delivered_bytes = 0;
  /// delivered_bytes / elapsed_us (B/µs == MB/s, the paper's convention).
  double aggregate_mbps = 0.0;
  /// Every receive buffer matched its sender's payload in every wave.
  bool data_ok = true;
  obs::Snapshot metrics;
};

/// Expected delivered_bytes of a run: |pairs| * msg_bytes * iters.
std::uint64_t expected_delivered_bytes(const PatternPoint& point,
                                       std::uint64_t msg_bytes, int iters);

/// Build a sparse MultiNodePlatform for the point's pair set and drive the
/// full pattern for opts.iters waves. Works in both progress modes; in
/// serial mode the run is deterministic (bit-identical timings across
/// repeats — tests/test_pattern_gen.cpp's determinism test).
PatternRunResult run_pattern_point(const PatternPoint& point,
                                   const PatternRunOpts& opts);

}  // namespace nmad::bench
