// Micro-benchmarks of the library's hot paths (google-benchmark): these
// run in *real* time and guard against regressions in the code the
// progression engine executes per packet.
//
// The custom main() additionally measures the scatter-gather packet path
// (packets/sec, copied vs total bytes, pool behaviour) and writes the
// machine-readable BENCH_micro_hotpaths.json that CI's bench-smoke job
// gates on via ci/check_bench_json.py.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/progress.hpp"
#include "core/spsc_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "proto/pool.hpp"
#include "proto/reassembly.hpp"
#include "proto/wire.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;

void BM_PacketEncodeSingle(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(len, std::byte{0x42});
  for (auto _ : state) {
    auto wire = proto::encode_data_packet(
        proto::SegHeader{1, 2, 0, static_cast<std::uint32_t>(len),
                         static_cast<std::uint32_t>(len)},
        payload);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_PacketEncodeSingle)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PacketViewEncodeSingle(benchmark::State& state) {
  // The zero-copy replacement for BM_PacketEncodeSingle: pooled header
  // block + in-place payload span. Cost must be flat in payload size.
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(len, std::byte{0x42});
  proto::BufferPool pool(proto::packet_wire_size(1, 0));
  for (auto _ : state) {
    auto view = proto::encode_data_packet_view(
        pool,
        proto::SegHeader{1, 2, 0, static_cast<std::uint32_t>(len),
                         static_cast<std::uint32_t>(len)},
        payload);
    benchmark::DoNotOptimize(view.head().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_PacketViewEncodeSingle)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PacketViewAggregatedStaged(benchmark::State& state) {
  // Aggregation keeps the paper's deliberate memcpy, but headers and the
  // staging area come from recycled pooled blocks.
  const auto nseg = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(256, std::byte{0x17});
  proto::BufferPool heads(proto::packet_wire_size(nseg, 0));
  proto::BufferPool staging(nseg * 256);
  for (auto _ : state) {
    proto::GatherBuilder builder(proto::PacketKind::kData, heads.acquire(),
                                 staging.acquire());
    for (std::size_t i = 0; i < nseg; ++i) {
      builder.add_segment_staged(
          proto::SegHeader{7, static_cast<std::uint32_t>(i), 0, 256, 256},
          payload);
    }
    auto view = std::move(builder).finish();
    benchmark::DoNotOptimize(view.head().data());
  }
}
BENCHMARK(BM_PacketViewAggregatedStaged)->Arg(2)->Arg(8)->Arg(64);

void BM_PacketDecode(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(len, std::byte{0x42});
  const auto wire = proto::encode_data_packet(
      proto::SegHeader{1, 2, 0, static_cast<std::uint32_t>(len),
                       static_cast<std::uint32_t>(len)},
      payload);
  for (auto _ : state) {
    auto decoded = proto::decode_packet(wire);
    benchmark::DoNotOptimize(decoded.has_value());
  }
}
BENCHMARK(BM_PacketDecode)->Arg(64)->Arg(65536);

void BM_AggregatedEncode(benchmark::State& state) {
  const auto nseg = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(256, std::byte{0x17});
  for (auto _ : state) {
    proto::PacketBuilder builder(proto::PacketKind::kData);
    for (std::size_t i = 0; i < nseg; ++i) {
      builder.add_segment(proto::SegHeader{7, static_cast<std::uint32_t>(i), 0,
                                           256, 256},
                          payload);
    }
    auto wire = std::move(builder).finish();
    benchmark::DoNotOptimize(wire.data());
  }
}
BENCHMARK(BM_AggregatedEncode)->Arg(2)->Arg(8)->Arg(64);

void BM_ReassemblyOutOfOrder(benchmark::State& state) {
  const auto chunks = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 4096;
  std::vector<std::byte> dest(chunks * kChunk);
  std::vector<std::byte> src(kChunk, std::byte{0x33});
  std::vector<std::size_t> order(chunks);
  for (std::size_t i = 0; i < chunks; ++i) order[i] = i;
  util::Xoshiro256 rng(99);
  std::shuffle(order.begin(), order.end(), rng);

  for (auto _ : state) {
    proto::MessageAssembly assembly(dest);
    for (std::size_t i : order) {
      auto st = assembly.add_chunk(i * kChunk, src);
      benchmark::DoNotOptimize(st.has_value());
    }
    benchmark::DoNotOptimize(assembly.complete());
  }
}
BENCHMARK(BM_ReassemblyOutOfOrder)->Arg(16)->Arg(256);

void BM_EventQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    util::Xoshiro256 rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule(static_cast<sim::TimeNs>(rng.next_below(1000000)),
                      [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EventQueueChurn)->Arg(1024)->Arg(16384);

void BM_FairShareRecompute(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::FairShareNet net(engine);
    auto bus_a = net.add_constraint(2000.0, "bus_a");
    auto bus_b = net.add_constraint(2000.0, "bus_b");
    std::size_t done = 0;
    for (std::size_t i = 0; i < flows; ++i) {
      auto link = net.add_constraint(1200.0, "link");
      net.start_flow(1 << 20, {link, bus_a, bus_b}, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FairShareRecompute)->Arg(2)->Arg(16);

// --- per-thread submission ring (core/spsc_ring) ----------------------------
// The push/pop pair is what every isend/irecv pays on the many-thread
// submission path, and what the progress threads pay per drained op.
// Uncontended cost must stay in the tens-of-nanoseconds range.

void BM_SpscRingPushPop(benchmark::State& state) {
  // Alternating push/pop on a warm ring: the steady-state cost of one
  // submission traversing the lane with an idle consumer.
  core::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0, out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(v + 0));
    benchmark::DoNotOptimize(ring.try_pop(out));
    ++v;
  }
  benchmark::DoNotOptimize(out);
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingBurstDrain(benchmark::State& state) {
  // Fill/drain bursts of range(0) ops: the shape a submission_burst
  // produces (producer runs ahead, the progress thread drains a chunk).
  const auto burst = static_cast<std::uint64_t>(state.range(0));
  core::SpscRing<std::uint64_t> ring(2 * burst);
  std::uint64_t out = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(ring.try_push(i + 0));
    }
    for (std::uint64_t i = 0; i < burst; ++i) {
      benchmark::DoNotOptimize(ring.try_pop(out));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_SpscRingBurstDrain)->Arg(64)->Arg(1024);

void BM_SpscRingBackoffFastPath(benchmark::State& state) {
  // spsc_push_backoff with room available must cost the same as a bare
  // try_push — the stall machinery may only tax the full-ring case.
  core::SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0, out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::spsc_push_backoff(ring, v + 0, 0, [] {}));
    benchmark::DoNotOptimize(ring.try_pop(out));
    ++v;
  }
}
BENCHMARK(BM_SpscRingBackoffFastPath);

// --- obs/ hot-path cost (the <=2% overhead budget) --------------------------
// Counter::inc and Histogram::record are the only operations instrumented
// code runs per packet; both must stay in the couple-of-nanoseconds range
// (and at exactly zero with NMAD_METRICS=OFF, where they compile out).

void BM_MetricsCounterInc(benchmark::State& state) {
  obs::Counter counter;
  std::uint64_t bytes = 1;
  for (auto _ : state) {
    counter.inc(bytes);
    bytes += 7;
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::Histogram hist;
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 2862933555777941757ULL) + 3037000493ULL;  // cheap LCG spread
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_MetricsSnapshot(benchmark::State& state) {
  // Cold path: registry walk + map construction. Not on the hot path, but
  // keep an eye on it — benches snapshot once per sweep.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<obs::Counter> counters(n);
  obs::MetricsRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    registry.add("g.rail" + std::to_string(i % 4) + ".c" + std::to_string(i),
                 &counters[i]);
  }
  for (auto _ : state) {
    obs::Snapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_MetricsSnapshot)->Arg(64)->Arg(512);

// --- packet-path report (BENCH_micro_hotpaths.json) -------------------------
// Hand-timed measurement of the three packet construction paths the
// strategies exercise per packet. CI gates on the invariants: the
// zero-copy paths must report bytes_copied == 0, aggregation may copy at
// most what it carries, and steady state must run entirely from the pools.

struct PacketPathResult {
  const char* name;
  bool zero_copy;  ///< contract: this path must never copy payload bytes
  double packets_per_sec = 0.0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
};

template <typename BuildFn>
PacketPathResult measure_packet_path(const char* name, bool zero_copy,
                                     std::size_t payload_per_packet,
                                     proto::BufferPool& heads,
                                     proto::BufferPool& staging,
                                     BuildFn&& build) {
  const bool smoke = std::getenv("NMAD_BENCH_SMOKE") != nullptr;
  const std::uint64_t iters = smoke ? 2'000 : 200'000;
  for (std::uint64_t i = 0; i < 64; ++i) (void)build();  // warm the pools

  const auto hits0 = heads.hit_count() + staging.hit_count();
  const auto misses0 = heads.miss_count() + staging.miss_count();
  std::uint64_t copied = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    proto::PacketView view = build();
    copied += view.copied_bytes();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  PacketPathResult r;
  r.name = name;
  r.zero_copy = zero_copy;
  r.packets_per_sec = secs > 0.0 ? static_cast<double>(iters) / secs : 0.0;
  r.bytes_copied = copied;
  r.total_bytes = iters * payload_per_packet;
  r.pool_hits = heads.hit_count() + staging.hit_count() - hits0;
  r.pool_misses = heads.miss_count() + staging.miss_count() - misses0;
  return r;
}

std::vector<PacketPathResult> run_packet_path_report() {
  std::vector<PacketPathResult> results;

  {  // single-segment eager packet: pooled header + in-place payload span
    constexpr std::size_t kLen = 4096;
    std::vector<std::byte> payload(kLen, std::byte{0x42});
    proto::BufferPool heads(proto::packet_wire_size(1, 0));
    proto::BufferPool staging;
    results.push_back(measure_packet_path(
        "single_eager", /*zero_copy=*/true, kLen, heads, staging, [&] {
          return proto::encode_data_packet_view(
              heads, proto::SegHeader{1, 2, 0, kLen, kLen}, payload);
        }));
  }

  {  // DMA chunk: same zero-copy path, bulk-sized payload referenced in place
    constexpr std::size_t kLen = 256 * 1024;
    std::vector<std::byte> payload(kLen, std::byte{0x17});
    proto::BufferPool heads(proto::packet_wire_size(1, 0));
    proto::BufferPool staging;
    results.push_back(measure_packet_path(
        "dma_chunk", /*zero_copy=*/true, kLen, heads, staging, [&] {
          return proto::encode_data_packet_view(
              heads, proto::SegHeader{3, 4, 0, kLen, kLen}, payload);
        }));
  }

  {  // aggregation: the paper's deliberate memcpy into pooled staging
    constexpr std::size_t kSegs = 8;
    constexpr std::size_t kSegLen = 256;
    std::vector<std::byte> payload(kSegLen, std::byte{0x3c});
    proto::BufferPool heads(proto::packet_wire_size(kSegs, 0));
    proto::BufferPool staging(kSegs * kSegLen);
    results.push_back(measure_packet_path(
        "aggregated", /*zero_copy=*/false, kSegs * kSegLen, heads, staging,
        [&] {
          proto::GatherBuilder builder(proto::PacketKind::kData,
                                       heads.acquire(), staging.acquire());
          for (std::size_t i = 0; i < kSegs; ++i) {
            builder.add_segment_staged(
                proto::SegHeader{7, static_cast<std::uint32_t>(i), 0, kSegLen,
                                 kSegLen},
                payload);
          }
          return std::move(builder).finish();
        }));
  }
  return results;
}

bool write_packet_path_report(const std::vector<PacketPathResult>& results) {
  const char* path = "BENCH_micro_hotpaths.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_hotpaths: cannot write %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_hotpaths\",\n");
  std::fprintf(f, "  \"metrics_enabled\": %s,\n",
               obs::kMetricsEnabled ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n",
               std::getenv("NMAD_BENCH_SMOKE") != nullptr ? "true" : "false");
  // Configuration stamp required by ci/check_bench_json.py: this bench
  // drives no platform, so chaos is always "none" and the seed fixed.
  std::fprintf(f,
               "  \"meta\": {\"progress_mode\": \"%s\", "
               "\"chaos_profile\": \"none\", \"seed\": 0},\n",
               core::to_string(
                   core::resolve_progress_mode(core::ProgressMode::kDefault)));
  std::fprintf(f, "  \"packet_path\": [");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PacketPathResult& r = results[i];
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"zero_copy\": %s, "
                 "\"packets_per_sec\": %.6g, \"bytes_copied\": %llu, "
                 "\"total_bytes\": %llu, \"pool_hits\": %llu, "
                 "\"pool_misses\": %llu}",
                 i == 0 ? "" : ",", r.name, r.zero_copy ? "true" : "false",
                 r.packets_per_sec,
                 static_cast<unsigned long long>(r.bytes_copied),
                 static_cast<unsigned long long>(r.total_bytes),
                 static_cast<unsigned long long>(r.pool_hits),
                 static_cast<unsigned long long>(r.pool_misses));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("REPORT written %s (%zu packet paths)\n", path, results.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto results = run_packet_path_report();
  for (const PacketPathResult& r : results) {
    std::printf("packet_path %-14s %12.0f pkt/s  copied %llu / %llu bytes  "
                "pool %llu hits / %llu misses\n",
                r.name, r.packets_per_sec,
                static_cast<unsigned long long>(r.bytes_copied),
                static_cast<unsigned long long>(r.total_bytes),
                static_cast<unsigned long long>(r.pool_hits),
                static_cast<unsigned long long>(r.pool_misses));
  }
  if (!write_packet_path_report(results)) return 1;

  // The google-benchmark suite runs in full mode only; smoke CI just needs
  // the JSON above and should not spend minutes on timing loops.
  if (std::getenv("NMAD_BENCH_SMOKE") == nullptr) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
