// Micro-benchmarks of the library's hot paths (google-benchmark): these
// run in *real* time and guard against regressions in the code the
// progression engine executes per packet.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "proto/reassembly.hpp"
#include "proto/wire.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;

void BM_PacketEncodeSingle(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(len, std::byte{0x42});
  for (auto _ : state) {
    auto wire = proto::encode_data_packet(
        proto::SegHeader{1, 2, 0, static_cast<std::uint32_t>(len),
                         static_cast<std::uint32_t>(len)},
        payload);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_PacketEncodeSingle)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PacketDecode(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(len, std::byte{0x42});
  const auto wire = proto::encode_data_packet(
      proto::SegHeader{1, 2, 0, static_cast<std::uint32_t>(len),
                       static_cast<std::uint32_t>(len)},
      payload);
  for (auto _ : state) {
    auto decoded = proto::decode_packet(wire);
    benchmark::DoNotOptimize(decoded.has_value());
  }
}
BENCHMARK(BM_PacketDecode)->Arg(64)->Arg(65536);

void BM_AggregatedEncode(benchmark::State& state) {
  const auto nseg = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(256, std::byte{0x17});
  for (auto _ : state) {
    proto::PacketBuilder builder(proto::PacketKind::kData);
    for (std::size_t i = 0; i < nseg; ++i) {
      builder.add_segment(proto::SegHeader{7, static_cast<std::uint32_t>(i), 0,
                                           256, 256},
                          payload);
    }
    auto wire = std::move(builder).finish();
    benchmark::DoNotOptimize(wire.data());
  }
}
BENCHMARK(BM_AggregatedEncode)->Arg(2)->Arg(8)->Arg(64);

void BM_ReassemblyOutOfOrder(benchmark::State& state) {
  const auto chunks = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 4096;
  std::vector<std::byte> dest(chunks * kChunk);
  std::vector<std::byte> src(kChunk, std::byte{0x33});
  std::vector<std::size_t> order(chunks);
  for (std::size_t i = 0; i < chunks; ++i) order[i] = i;
  util::Xoshiro256 rng(99);
  std::shuffle(order.begin(), order.end(), rng);

  for (auto _ : state) {
    proto::MessageAssembly assembly(dest);
    for (std::size_t i : order) {
      auto st = assembly.add_chunk(i * kChunk, src);
      benchmark::DoNotOptimize(st.has_value());
    }
    benchmark::DoNotOptimize(assembly.complete());
  }
}
BENCHMARK(BM_ReassemblyOutOfOrder)->Arg(16)->Arg(256);

void BM_EventQueueChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    util::Xoshiro256 rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule(static_cast<sim::TimeNs>(rng.next_below(1000000)),
                      [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EventQueueChurn)->Arg(1024)->Arg(16384);

void BM_FairShareRecompute(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::FairShareNet net(engine);
    auto bus_a = net.add_constraint(2000.0, "bus_a");
    auto bus_b = net.add_constraint(2000.0, "bus_b");
    std::size_t done = 0;
    for (std::size_t i = 0; i < flows; ++i) {
      auto link = net.add_constraint(1200.0, "link");
      net.start_flow(1 << 20, {link, bus_a, bus_b}, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FairShareRecompute)->Arg(2)->Arg(16);

// --- obs/ hot-path cost (the <=2% overhead budget) --------------------------
// Counter::inc and Histogram::record are the only operations instrumented
// code runs per packet; both must stay in the couple-of-nanoseconds range
// (and at exactly zero with NMAD_METRICS=OFF, where they compile out).

void BM_MetricsCounterInc(benchmark::State& state) {
  obs::Counter counter;
  std::uint64_t bytes = 1;
  for (auto _ : state) {
    counter.inc(bytes);
    bytes += 7;
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  obs::Histogram hist;
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 2862933555777941757ULL) + 3037000493ULL;  // cheap LCG spread
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_MetricsSnapshot(benchmark::State& state) {
  // Cold path: registry walk + map construction. Not on the hot path, but
  // keep an eye on it — benches snapshot once per sweep.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<obs::Counter> counters(n);
  obs::MetricsRegistry registry;
  for (std::size_t i = 0; i < n; ++i) {
    registry.add("g.rail" + std::to_string(i % 4) + ".c" + std::to_string(i),
                 &counters[i]);
  }
  for (auto _ : state) {
    obs::Snapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_MetricsSnapshot)->Arg(64)->Arg(512);

}  // namespace
