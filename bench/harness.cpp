#include "harness.hpp"

#include <cstdio>

#include "util/byte_size.hpp"
#include "util/panic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nmad::bench {

namespace {
bool g_all_checks_ok = true;
}  // namespace

double pingpong_oneway_us(core::TwoNodePlatform& p, std::uint64_t total_size,
                          const PingPongOpts& opts) {
  NMAD_ASSERT(opts.segments >= 1, "segments must be >= 1");
  NMAD_ASSERT(opts.iters >= 1, "iters must be >= 1");
  const auto nseg = static_cast<std::uint64_t>(opts.segments);

  static std::vector<std::byte> payload_a, payload_b, sink_a, sink_b;
  if (payload_a.size() < total_size) {
    util::Xoshiro256 rng(0xbadc0ffee);
    payload_a.resize(total_size);
    payload_b.resize(total_size);
    for (auto& x : payload_a) x = std::byte(rng.next() & 0xff);
    for (auto& x : payload_b) x = std::byte(rng.next() & 0xff);
    sink_a.resize(total_size);
    sink_b.resize(total_size);
  }

  // Segment boundaries: equal sizes, last segment absorbs the remainder.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces;  // offset,len
  const std::uint64_t base = total_size / nseg;
  std::uint64_t off = 0;
  for (std::uint64_t i = 0; i < nseg; ++i) {
    const std::uint64_t len = (i + 1 == nseg) ? total_size - off : base;
    pieces.emplace_back(off, len);
    off += len;
  }

  util::RunningStats halves;
  for (int iter = 0; iter < opts.iters; ++iter) {
    std::vector<core::RecvHandle> recvs_b, recvs_a;
    std::vector<core::SendHandle> sends_a, sends_b;

    for (auto [o, l] : pieces) {
      recvs_b.push_back(p.b().irecv(p.gate_ba(), 0,
                                    std::span<std::byte>(sink_b.data() + o, l)));
      recvs_a.push_back(p.a().irecv(p.gate_ab(), 0,
                                    std::span<std::byte>(sink_a.data() + o, l)));
    }

    const sim::TimeNs t0 = p.now();
    for (auto [o, l] : pieces) {
      sends_a.push_back(p.a().isend(
          p.gate_ab(), 0, std::span<const std::byte>(payload_a.data() + o, l)));
    }
    p.b().wait_all({}, recvs_b);

    // The pong: b echoes as soon as its receives complete.
    for (auto [o, l] : pieces) {
      sends_b.push_back(p.b().isend(
          p.gate_ba(), 0, std::span<const std::byte>(payload_b.data() + o, l)));
    }
    p.a().wait_all(sends_a, recvs_a);
    p.b().wait_all(sends_b, {});

    sim::TimeNs done = t0;
    for (const auto& r : recvs_a) done = std::max(done, r->completion_time());
    halves.add(sim::ns_to_us(done - t0) / 2.0);
  }
  return halves.mean();
}

std::vector<std::uint64_t> doubling_sizes(std::uint64_t min_size,
                                          std::uint64_t max_size) {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = min_size; s <= max_size; s *= 2) sizes.push_back(s);
  return sizes;
}

std::vector<std::uint64_t> latency_sizes() { return doubling_sizes(4, 32 * 1024); }

std::vector<std::uint64_t> bandwidth_sizes() {
  return doubling_sizes(32 * 1024, 8 * 1024 * 1024);
}

Series sweep_latency(const core::PlatformConfig& config, std::string label,
                     const std::vector<std::uint64_t>& sizes,
                     const PingPongOpts& opts) {
  core::TwoNodePlatform platform(config);
  Series series{std::move(label), {}};
  series.values.reserve(sizes.size());
  for (std::uint64_t size : sizes) {
    series.values.push_back(pingpong_oneway_us(platform, size, opts));
  }
  return series;
}

Series sweep_bandwidth(const core::PlatformConfig& config, std::string label,
                       const std::vector<std::uint64_t>& sizes,
                       const PingPongOpts& opts) {
  Series series = sweep_latency(config, std::move(label), sizes, opts);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    series.values[i] = static_cast<double>(sizes[i]) / series.values[i];  // B/µs == MB/s
  }
  return series;
}

void print_table(const std::string& title, const std::string& unit,
                 const std::vector<std::uint64_t>& sizes,
                 const std::vector<Series>& series) {
  std::printf("# %s\n", title.c_str());
  std::printf("# %-10s", "size");
  for (const Series& s : series) std::printf("  %22s", s.label.c_str());
  std::printf("   [%s]\n", unit.c_str());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-12s", util::format_byte_size(sizes[i]).c_str());
    for (const Series& s : series) std::printf("  %22.2f", s.values[i]);
    std::printf("\n");
  }
  std::printf("\n");
}

bool check(const std::string& what, double measured, double expected,
           double rel_tol) {
  const double rel = expected != 0.0
                         ? std::abs(measured - expected) / std::abs(expected)
                         : std::abs(measured);
  const bool ok = rel <= rel_tol;
  std::printf("CHECK %-58s measured=%10.2f paper=%10.2f  %s\n", what.c_str(),
              measured, expected, ok ? "PASS" : "FAIL");
  g_all_checks_ok = g_all_checks_ok && ok;
  return ok;
}

bool check_greater(const std::string& what, double measured, double bound) {
  const bool ok = measured > bound;
  std::printf("CHECK %-58s measured=%10.2f >  bound=%10.2f  %s\n", what.c_str(),
              measured, bound, ok ? "PASS" : "FAIL");
  g_all_checks_ok = g_all_checks_ok && ok;
  return ok;
}

bool check_less(const std::string& what, double measured, double bound) {
  const bool ok = measured < bound;
  std::printf("CHECK %-58s measured=%10.2f <  bound=%10.2f  %s\n", what.c_str(),
              measured, bound, ok ? "PASS" : "FAIL");
  g_all_checks_ok = g_all_checks_ok && ok;
  return ok;
}

int checks_exit_code() { return g_all_checks_ok ? 0 : 1; }

}  // namespace nmad::bench
