#include "harness.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/byte_size.hpp"
#include "util/panic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nmad::bench {

namespace {
bool g_all_checks_ok = true;

// --- JSON report state ------------------------------------------------------
// Filled as the bench prints tables and runs checks; flushed to
// BENCH_<name>.json by checks_exit_code() when set_report_name was called.

struct ReportSeries {
  std::string label;
  std::string unit;                 // empty for metrics-only captures
  std::vector<std::uint64_t> sizes;
  std::vector<double> values;
  obs::Snapshot metrics;
};

struct CheckRecord {
  std::string what;
  double measured = 0.0;
  double reference = 0.0;
  std::string kind;  // "rel" | "greater" | "less"
  bool ok = true;
};

struct PatternStamp {
  std::string pattern;
  std::size_t p = 0, g = 0, k = 0;
  std::string direction;
};

std::string g_report_name;
std::string g_report_chaos = "none";
long g_report_seed = 0;
std::vector<PatternStamp> g_pattern_stamps;
double g_report_compare_tolerance = -1.0;  // < 0: not set, omit the block
std::vector<ReportSeries> g_report_series;
std::vector<CheckRecord> g_checks;

void record_check(const char* kind, const std::string& what, double measured,
                  double reference, bool ok) {
  g_checks.push_back({what, measured, reference, kind, ok});
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

/// Shift every line of `block` (a rendered JSON object) right by `spaces`,
/// except the first, so it can be embedded mid-line in an outer document.
std::string indent_block(const std::string& block, int spaces) {
  std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  out.reserve(block.size());
  for (char c : block) {
    out += c;
    if (c == '\n') out += pad;
  }
  return out;
}

void write_report() {
  const std::string path = "BENCH_" + g_report_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    g_all_checks_ok = false;
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", json_escape(g_report_name).c_str());
  std::fprintf(f, "  \"metrics_enabled\": %s,\n",
               obs::kMetricsEnabled ? "true" : "false");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke_mode() ? "true" : "false");
  // The configuration stamp: which progress mode / chaos profile / seed
  // produced this report. CI's trajectory comparison only diffs reports
  // with matching meta blocks.
  std::fprintf(f,
               "  \"meta\": {\"progress_mode\": \"%s\", "
               "\"chaos_profile\": \"%s\", \"seed\": %ld",
               core::to_string(
                   core::resolve_progress_mode(core::ProgressMode::kDefault)),
               json_escape(g_report_chaos).c_str(), g_report_seed);
  if (!g_pattern_stamps.empty()) {
    std::fprintf(f, ",\n    \"pattern_points\": [");
    for (std::size_t i = 0; i < g_pattern_stamps.size(); ++i) {
      const PatternStamp& st = g_pattern_stamps[i];
      std::fprintf(f,
                   "%s\n      {\"pattern\": \"%s\", \"p\": %zu, \"g\": %zu, "
                   "\"k\": %zu, \"direction\": \"%s\"}",
                   i == 0 ? "" : ",", json_escape(st.pattern).c_str(), st.p,
                   st.g, st.k, json_escape(st.direction).c_str());
    }
    std::fprintf(f, "\n    ]");
  }
  std::fprintf(f, "},\n");
  if (g_report_compare_tolerance >= 0.0) {
    std::fprintf(f, "  \"compare\": {\"tolerance\": %.6g},\n",
                 g_report_compare_tolerance);
  }
  std::fprintf(f, "  \"series\": [");
  for (std::size_t i = 0; i < g_report_series.size(); ++i) {
    const ReportSeries& s = g_report_series[i];
    std::fprintf(f, "%s\n    {\n", i == 0 ? "" : ",");
    std::fprintf(f, "      \"label\": \"%s\",\n", json_escape(s.label).c_str());
    std::fprintf(f, "      \"unit\": \"%s\",\n", json_escape(s.unit).c_str());
    std::fprintf(f, "      \"sizes\": [");
    for (std::size_t j = 0; j < s.sizes.size(); ++j) {
      std::fprintf(f, "%s%llu", j == 0 ? "" : ", ",
                   static_cast<unsigned long long>(s.sizes[j]));
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "      \"values\": [");
    for (std::size_t j = 0; j < s.values.size(); ++j) {
      std::fprintf(f, "%s%.6g", j == 0 ? "" : ", ", s.values[j]);
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "      \"metrics\": %s\n",
                 indent_block(obs::dump_json(s.metrics), 6).c_str());
    std::fprintf(f, "    }");
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"checks\": [");
  for (std::size_t i = 0; i < g_checks.size(); ++i) {
    const CheckRecord& c = g_checks[i];
    std::fprintf(f,
                 "%s\n    {\"what\": \"%s\", \"kind\": \"%s\", "
                 "\"measured\": %.6g, \"reference\": %.6g, \"ok\": %s}",
                 i == 0 ? "" : ",", json_escape(c.what).c_str(),
                 c.kind.c_str(), c.measured, c.reference,
                 c.ok ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("REPORT written %s (%zu series, %zu checks)\n", path.c_str(),
              g_report_series.size(), g_checks.size());
}

}  // namespace

bool smoke_mode() {
  static const bool smoke = std::getenv("NMAD_BENCH_SMOKE") != nullptr;
  return smoke;
}

void set_report_name(std::string name) { g_report_name = std::move(name); }

void set_report_chaos(std::string profile) {
  g_report_chaos = std::move(profile);
}

void set_report_seed(long seed) { g_report_seed = seed; }

void stamp_pattern_point(const std::string& pattern, std::size_t p,
                         std::size_t g, std::size_t k,
                         const std::string& direction) {
  g_pattern_stamps.push_back({pattern, p, g, k, direction});
}

void set_report_compare_tolerance(double tolerance) {
  g_report_compare_tolerance = tolerance;
}

void register_platform_metrics(obs::MetricsRegistry& registry,
                               core::TwoNodePlatform& p) {
  p.a().register_metrics(registry, "a.");
  p.b().register_metrics(registry, "b.");
}

void record_metrics(const std::string& label, core::TwoNodePlatform& p) {
  obs::MetricsRegistry registry;
  register_platform_metrics(registry, p);
  ReportSeries s;
  s.label = label;
  s.metrics = registry.snapshot();
  g_report_series.push_back(std::move(s));
}

void record_series(const std::string& unit,
                   const std::vector<std::uint64_t>& sizes, const Series& s) {
  g_report_series.push_back({s.label, unit, sizes, s.values, s.metrics});
}

double pingpong_oneway_us(core::TwoNodePlatform& p, std::uint64_t total_size,
                          const PingPongOpts& opts) {
  NMAD_ASSERT(opts.segments >= 1, "segments must be >= 1");
  NMAD_ASSERT(opts.iters >= 1, "iters must be >= 1");
  const int iters = smoke_mode() ? 1 : opts.iters;
  const auto nseg = static_cast<std::uint64_t>(opts.segments);

  static std::vector<std::byte> payload_a, payload_b, sink_a, sink_b;
  if (payload_a.size() < total_size) {
    util::Xoshiro256 rng(0xbadc0ffee);
    payload_a.resize(total_size);
    payload_b.resize(total_size);
    for (auto& x : payload_a) x = std::byte(rng.next() & 0xff);
    for (auto& x : payload_b) x = std::byte(rng.next() & 0xff);
    sink_a.resize(total_size);
    sink_b.resize(total_size);
  }

  // Segment boundaries: equal sizes, last segment absorbs the remainder.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces;  // offset,len
  const std::uint64_t base = total_size / nseg;
  std::uint64_t off = 0;
  for (std::uint64_t i = 0; i < nseg; ++i) {
    const std::uint64_t len = (i + 1 == nseg) ? total_size - off : base;
    pieces.emplace_back(off, len);
    off += len;
  }

  util::RunningStats halves;
  for (int iter = 0; iter < iters; ++iter) {
    std::vector<core::RecvHandle> recvs_b, recvs_a;
    std::vector<core::SendHandle> sends_a, sends_b;

    for (auto [o, l] : pieces) {
      recvs_b.push_back(p.b().irecv(p.gate_ba(), 0,
                                    std::span<std::byte>(sink_b.data() + o, l)));
      recvs_a.push_back(p.a().irecv(p.gate_ab(), 0,
                                    std::span<std::byte>(sink_a.data() + o, l)));
    }

    const sim::TimeNs t0 = p.now();
    for (auto [o, l] : pieces) {
      sends_a.push_back(p.a().isend(
          p.gate_ab(), 0, std::span<const std::byte>(payload_a.data() + o, l)));
    }
    p.b().wait_all({}, recvs_b);

    // The pong: b echoes as soon as its receives complete.
    for (auto [o, l] : pieces) {
      sends_b.push_back(p.b().isend(
          p.gate_ba(), 0, std::span<const std::byte>(payload_b.data() + o, l)));
    }
    p.a().wait_all(sends_a, recvs_a);
    p.b().wait_all(sends_b, {});

    sim::TimeNs done = t0;
    for (const auto& r : recvs_a) done = std::max(done, r->completion_time());
    halves.add(sim::ns_to_us(done - t0) / 2.0);
  }
  return halves.mean();
}

std::vector<std::uint64_t> doubling_sizes(std::uint64_t min_size,
                                          std::uint64_t max_size) {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = min_size; s <= max_size; s *= 2) sizes.push_back(s);
  return sizes;
}

std::vector<std::uint64_t> latency_sizes() { return doubling_sizes(4, 32 * 1024); }

std::vector<std::uint64_t> bandwidth_sizes() {
  return doubling_sizes(32 * 1024, 8 * 1024 * 1024);
}

Series sweep_latency(const core::PlatformConfig& config, std::string label,
                     const std::vector<std::uint64_t>& sizes,
                     const PingPongOpts& opts) {
  core::TwoNodePlatform platform(config);
  Series series;
  series.label = std::move(label);
  series.values.reserve(sizes.size());
  for (std::uint64_t size : sizes) {
    series.values.push_back(pingpong_oneway_us(platform, size, opts));
  }
  // Snapshot before the platform (and the live metrics it owns) goes away.
  obs::MetricsRegistry registry;
  register_platform_metrics(registry, platform);
  series.metrics = registry.snapshot();
  return series;
}

Series sweep_bandwidth(const core::PlatformConfig& config, std::string label,
                       const std::vector<std::uint64_t>& sizes,
                       const PingPongOpts& opts) {
  Series series = sweep_latency(config, std::move(label), sizes, opts);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    series.values[i] = static_cast<double>(sizes[i]) / series.values[i];  // B/µs == MB/s
  }
  return series;
}

void print_table(const std::string& title, const std::string& unit,
                 const std::vector<std::uint64_t>& sizes,
                 const std::vector<Series>& series) {
  std::printf("# %s\n", title.c_str());
  std::printf("# %-10s", "size");
  for (const Series& s : series) std::printf("  %22s", s.label.c_str());
  std::printf("   [%s]\n", unit.c_str());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-12s", util::format_byte_size(sizes[i]).c_str());
    for (const Series& s : series) std::printf("  %22.2f", s.values[i]);
    std::printf("\n");
  }
  std::printf("\n");
  for (const Series& s : series) {
    g_report_series.push_back({s.label, unit, sizes, s.values, s.metrics});
  }
}

bool check(const std::string& what, double measured, double expected,
           double rel_tol) {
  const double rel = expected != 0.0
                         ? std::abs(measured - expected) / std::abs(expected)
                         : std::abs(measured);
  const bool ok = rel <= rel_tol;
  std::printf("CHECK %-58s measured=%10.2f paper=%10.2f  %s%s\n", what.c_str(),
              measured, expected, ok ? "PASS" : "FAIL",
              !ok && smoke_mode() ? " (advisory: smoke)" : "");
  record_check("rel", what, measured, expected, ok);
  if (!smoke_mode()) g_all_checks_ok = g_all_checks_ok && ok;
  return ok;
}

bool check_greater(const std::string& what, double measured, double bound) {
  const bool ok = measured > bound;
  std::printf("CHECK %-58s measured=%10.2f >  bound=%10.2f  %s%s\n", what.c_str(),
              measured, bound, ok ? "PASS" : "FAIL",
              !ok && smoke_mode() ? " (advisory: smoke)" : "");
  record_check("greater", what, measured, bound, ok);
  if (!smoke_mode()) g_all_checks_ok = g_all_checks_ok && ok;
  return ok;
}

bool check_less(const std::string& what, double measured, double bound) {
  const bool ok = measured < bound;
  std::printf("CHECK %-58s measured=%10.2f <  bound=%10.2f  %s%s\n", what.c_str(),
              measured, bound, ok ? "PASS" : "FAIL",
              !ok && smoke_mode() ? " (advisory: smoke)" : "");
  record_check("less", what, measured, bound, ok);
  if (!smoke_mode()) g_all_checks_ok = g_all_checks_ok && ok;
  return ok;
}

int checks_exit_code() {
  if (!g_report_name.empty()) write_report();
  return g_all_checks_ok ? 0 : 1;
}

}  // namespace nmad::bench
